"""Evaluation of the §V power-aware optimizers built on the power model.

Not a paper figure: this benchmark quantifies how much power/energy each of
the proposed future-work techniques (weight shifting, permutation-invariant
reordering, power-aware sparsity, data pruning for capping, the power-aware
compiler) recovers on a transformer-like GEMM workload.
"""

from __future__ import annotations

import json

import numpy as np

from common import RESULTS_DIR, bench_settings
from repro.optimize.compiler import GemmOp, Pipeline, PowerAwareCompiler
from repro.optimize.estimation import quick_power_estimate
from repro.optimize.permutation import greedy_low_toggle_permutation, permute_columns
from repro.optimize.power_capping import find_sparsity_for_cap
from repro.optimize.sparsity_design import design_sparsity
from repro.optimize.weight_shift import shift_weights_for_power
from repro.util.rng import derive_rng
from repro.util.tables import format_table


def _llm_layer(size):
    """Activation / weight matrices shaped like one transformer projection."""
    rng = derive_rng(99, "optimizer_bench", size)
    activations = rng.normal(0.0, 1.0, size=(size, size))
    weights = rng.normal(0.0, 0.02, size=(size, size))
    return activations, weights


def _run_optimizers(size):
    activations, weights = _llm_layer(size)
    baseline = quick_power_estimate(activations, weights, dtype="fp16_t", gpu="a100")

    rows = []
    results = {"baseline_power_w": baseline.power_watts}

    shift = shift_weights_for_power(activations, weights, dtype="fp16_t", gpu="a100")
    rows.append(["weight mean shift", shift.shifted.power_watts, shift.power_reduction_watts, "approximate"])
    results["weight_shift"] = shift.shifted.as_dict()

    permutation = greedy_low_toggle_permutation(weights, dtype="fp16_t")
    permuted = quick_power_estimate(activations, permute_columns(weights, permutation), gpu="a100")
    rows.append(["permutation reorder", permuted.power_watts, baseline.power_watts - permuted.power_watts, "exact"])
    results["permutation"] = permuted.as_dict()

    design = design_sparsity(activations, weights, sparsity=0.5, dtype="fp16_t", gpu="a100")
    rows.append(["50% magnitude pruning", design.pruned.power_watts, design.power_reduction_watts, f"err={design.relative_error:.3f}"])
    results["sparsity_design"] = design.pruned.as_dict()

    structured = design_sparsity(activations, weights, sparsity=0.5, structured=(2, 4), dtype="fp16_t", gpu="a100")
    rows.append(["2:4 structured sparsity", structured.pruned.power_watts, structured.power_reduction_watts, f"err={structured.relative_error:.3f}"])
    results["structured_sparsity"] = structured.pruned.as_dict()

    floor = quick_power_estimate(activations, np.zeros_like(weights), gpu="a100").power_watts
    cap_target = floor + 0.4 * (baseline.power_watts - floor)
    cap = find_sparsity_for_cap(activations, weights, power_cap_watts=cap_target, dtype="fp16_t", gpu="a100")
    rows.append([f"cap @ {cap_target:.0f} W via pruning", cap.capped.power_watts, baseline.power_watts - cap.capped.power_watts, f"sparsity={cap.sparsity:.2f}"])
    results["power_capping"] = {"sparsity": cap.sparsity, "feasible": cap.feasible, **cap.capped.as_dict()}

    pipeline = Pipeline(
        [
            GemmOp("attn_qkv", activations, weights.T.copy(), allowed_transforms=("permute_columns",)),
            GemmOp("mlp_up", activations, weights.T.copy(), allowed_transforms=("permute_columns", "shift_mean")),
            GemmOp("mlp_down", activations, weights.T.copy(), allowed_transforms=("permute_columns", "prune")),
        ]
    )
    report = PowerAwareCompiler("a100").compile(pipeline)
    rows.append(["power-aware compiler (3-op pipeline)", report.optimized_energy_j / report.baseline_energy_j * baseline.power_watts, report.mean_power_reduction_watts, f"energy -{report.energy_reduction_fraction:.1%}"])
    results["compiler"] = {
        "energy_reduction_fraction": report.energy_reduction_fraction,
        "transforms": [op.transform for op in report.ops],
    }

    return baseline, rows, results


def bench_power_aware_optimizers(benchmark):
    size = min(bench_settings().matrix_size, 512)
    baseline, rows, results = benchmark.pedantic(_run_optimizers, args=(size,), rounds=1, iterations=1)

    table = format_table(
        ["technique", "power_W", "reduction_W", "notes"],
        rows,
        precision=2,
        title=f"Power-aware optimizers on a {size}^2 FP16-T GEMM (A100); baseline {baseline.power_watts:.1f} W",
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "optimizers.txt").write_text(table + "\n")
    (RESULTS_DIR / "optimizers.json").write_text(json.dumps(results, indent=2))

    # Every technique must be power-neutral or better; pruning-based ones
    # must show a strictly positive reduction.
    assert all(row[2] >= -1e-6 for row in rows)
    assert results["power_capping"]["feasible"]
    assert results["compiler"]["energy_reduction_fraction"] >= 0.0
