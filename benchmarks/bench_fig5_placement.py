"""Figure 5: effects of input value placement (sorting) on GPU power.

Paper expectations (T8-T11): sorting into rows or columns reduces power;
aligned sorting (B transposed) reduces it the most; intra-row sorting helps
less than full sorting.
"""

from __future__ import annotations

from common import bench_settings, emit_figure
from repro.analysis.takeaways import (
    check_t8_sorting_decreases,
    check_t9_aligned_sorting_better,
    check_t10_column_sorting_decreases,
    check_t11_intra_row_lesser_effect,
)
from repro.experiments.figures import run_figure


def bench_fig5_placement(benchmark):
    settings = bench_settings()
    figure = benchmark.pedantic(run_figure, args=("fig5", settings), rounds=1, iterations=1)

    checks = []
    for dtype in settings.dtypes:
        rows = figure.panel(f"a_sorted_rows/{dtype}")
        aligned = figure.panel(f"b_sorted_aligned/{dtype}")
        columns = figure.panel(f"c_sorted_columns/{dtype}")
        within = figure.panel(f"d_sorted_within_rows/{dtype}")
        checks.append(check_t8_sorting_decreases(rows))
        checks.append(check_t9_aligned_sorting_better(rows, aligned))
        checks.append(check_t10_column_sorting_decreases(columns))
        checks.append(check_t11_intra_row_lesser_effect(rows, within))
    emit_figure(figure, [f"{c.takeaway}: {'PASS' if c.passed else 'FAIL'} — {c.detail}" for c in checks])

    failed = [c for c in checks if not c.passed]
    assert not failed, f"placement takeaways failed: {[c.takeaway for c in failed]}"
