"""Performance microbenchmarks of the simulator itself (pytest-benchmark).

These are conventional timing benchmarks (multiple rounds) covering the hot
paths of the library: bit-level popcount/toggle kernels, pattern generation,
switching-activity estimation, and a full harness run.  They guard against
regressions that would make the paper-scale (2048^2) reproduction
impractically slow.
"""

from __future__ import annotations

import numpy as np

from repro.activity.engine import activity_from_matrices
from repro.activity.sampler import SamplingConfig
from repro.dtypes import get_dtype
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.patterns.library import build_pattern
from repro.telemetry.sampler import TelemetryConfig
from repro.util.bits import popcount, toggle_fraction_along_axis
from repro.util.rng import derive_rng

SIZE = 1024


def _random_words(size):
    rng = derive_rng(5, "perf_words", size)
    return rng.integers(0, 1 << 16, size=(size, size), dtype=np.uint64).astype(np.uint16)


def bench_popcount_1m_words(benchmark):
    words = _random_words(SIZE)
    counts = benchmark(popcount, words)
    assert counts.shape == words.shape


def bench_stream_toggle_1m_words(benchmark):
    words = _random_words(SIZE)
    fraction = benchmark(toggle_fraction_along_axis, words, 1)
    assert 0.4 < fraction < 0.6


def bench_pattern_generation_sorted_rows(benchmark):
    pattern = build_pattern("sorted_rows", "fp16_t", fraction=1.0)
    rng = derive_rng(6, "perf_pattern")
    values = benchmark(pattern.generate, (SIZE, SIZE), get_dtype("fp16_t"), rng)
    assert values.shape == (SIZE, SIZE)


def bench_activity_estimation_1024(benchmark):
    rng = derive_rng(7, "perf_activity")
    a = rng.normal(0, 210, size=(SIZE, SIZE))
    b = rng.normal(0, 210, size=(SIZE, SIZE))
    report = benchmark(
        activity_from_matrices, a, b, "fp16_t", True, SamplingConfig(output_samples=128)
    )
    assert 0.0 < report.operand_activity <= 1.2


def bench_full_experiment_512(benchmark):
    config = ExperimentConfig(
        pattern_family="gaussian",
        dtype="fp16_t",
        matrix_size=512,
        seeds=1,
        telemetry=TelemetryConfig(noise_std_watts=0.0, drift_watts=0.0),
        include_process_variation=False,
    )
    result = benchmark(run_experiment, config)
    assert result.mean_power_watts > 50.0
