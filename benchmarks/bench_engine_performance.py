"""Performance microbenchmarks of the simulator itself (pytest-benchmark).

These are conventional timing benchmarks (multiple rounds) covering the hot
paths of the library: bit-level popcount/toggle kernels, pattern generation,
switching-activity estimation (sequential and batched), a full harness run,
cold-versus-warm sweep execution through the content-addressed result
cache, the sweep runner's execution-backend axis (serial vs released-GIL
threads vs shared-memory processes on a warm activity tier), the
plan-cache axis (cold cross-seed sweeps planning once per distinct config
vs once per point), and the thread-scaling of the nogil toggle kernel.
They guard against regressions that would make the paper-scale (2048^2)
reproduction impractically slow.

``REPRO_BENCH_SIZE`` overrides the matrix dimension (default 1024); CI's
smoke job runs everything at size 64 with ``--benchmark-min-rounds=2`` and
records the timings (``--benchmark-json``) for the artifact-diff step —
crashes fail the build, timing deltas only annotate it.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.activity.engine import (
    activity_from_matrices,
    estimate_activity_batch,
)
from repro.activity.sampler import SamplingConfig
from repro.cache.store import (
    ACTIVITY_SUBDIR,
    ActivityCache,
    ExperimentCache,
    set_default_activity_cache,
)
from repro.dtypes import get_dtype
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.experiments.plan import PlanCache
from repro.experiments.sweep import run_configs, sweep_configs
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.patterns.library import build_pattern
from repro.telemetry.sampler import TelemetryConfig
from repro.util.bits import popcount, toggle_fraction_along_axis
from repro.util.rng import derive_rng

SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "1024"))
#: Seed-batch width used by the batched-estimation benchmarks.
BATCH_SEEDS = 4
#: Pool width for the backend-comparison and thread-scaling benchmarks.
BACKEND_WORKERS = 4
#: Seeds per sweep point in the backend-comparison benchmarks.
BACKEND_SEEDS = 3


def _random_words(size):
    rng = derive_rng(5, "perf_words", size)
    return rng.integers(0, 1 << 16, size=(size, size), dtype=np.uint64).astype(np.uint16)


def _gaussian_operands(size, count):
    spec = get_dtype("fp16_t")
    problem = GemmProblem.square(size, dtype="fp16_t")
    pattern = build_pattern("gaussian", spec)
    operands = []
    for seed in range(count):
        a = pattern.generate(problem.a_shape, spec, derive_rng(2024, "A", seed))
        b = pattern.generate(problem.b_storage_shape, spec, derive_rng(2024, "B", seed))
        operands.append(GemmOperands(problem=problem, a=a, b_stored=b))
    return operands


def _quiet_config(**overrides):
    defaults = dict(
        pattern_family="gaussian",
        dtype="fp16_t",
        matrix_size=max(SIZE // 2, 64),
        seeds=1,
        telemetry=TelemetryConfig(noise_std_watts=0.0, drift_watts=0.0),
        include_process_variation=False,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def bench_popcount_1m_words(benchmark):
    words = _random_words(SIZE)
    counts = benchmark(popcount, words)
    assert counts.shape == words.shape


def bench_stream_toggle_1m_words(benchmark):
    words = _random_words(SIZE)
    fraction = benchmark(toggle_fraction_along_axis, words, 1)
    assert 0.4 < fraction < 0.6


def bench_pattern_generation_sorted_rows(benchmark):
    pattern = build_pattern("sorted_rows", "fp16_t", fraction=1.0)
    rng = derive_rng(6, "perf_pattern")
    values = benchmark(pattern.generate, (SIZE, SIZE), get_dtype("fp16_t"), rng)
    assert values.shape == (SIZE, SIZE)


def bench_activity_estimation_1024(benchmark):
    rng = derive_rng(7, "perf_activity")
    a = rng.normal(0, 210, size=(SIZE, SIZE))
    b = rng.normal(0, 210, size=(SIZE, SIZE))
    report = benchmark(
        activity_from_matrices, a, b, "fp16_t", True, SamplingConfig(output_samples=128)
    )
    assert 0.0 < report.operand_activity <= 1.2


def bench_activity_estimation_batched(benchmark):
    """All seeds of one config through the stacked batch engine at once."""
    operands = _gaussian_operands(SIZE // 2, BATCH_SEEDS)
    sampling = SamplingConfig(output_samples=128)
    reports = benchmark(estimate_activity_batch, operands, sampling)
    assert len(reports) == BATCH_SEEDS
    assert all(0.0 < r.operand_activity <= 1.2 for r in reports)


def bench_full_experiment_512(benchmark):
    config = _quiet_config(matrix_size=max(SIZE // 2, 128))
    # cache=None: this measures the harness itself, not the cache.
    result = benchmark(run_experiment, config, None)
    assert result.mean_power_watts > 25.0


def bench_sweep_cold(benchmark):
    """4-point sparsity sweep with caching disabled (every point computed)."""
    configs = sweep_configs(
        _quiet_config(pattern_family="sparsity", matrix_size=max(SIZE // 4, 64)),
        "sparsity",
        [0.0, 0.25, 0.5, 0.75],
    )
    results = benchmark(run_configs, configs, 1, None)
    assert len(results) == 4


def bench_sweep_warm_cache(benchmark):
    """The same sweep served entirely from a primed result cache.

    Compare against ``bench_sweep_cold``: the ratio is the speedup repeated
    figure/benchmark runs get from the content-addressed cache.
    """
    configs = sweep_configs(
        _quiet_config(pattern_family="sparsity", matrix_size=max(SIZE // 4, 64)),
        "sparsity",
        [0.0, 0.25, 0.5, 0.75],
    )
    cache = ExperimentCache(max_entries=16)
    run_configs(configs, cache=cache)  # prime
    results = benchmark(run_configs, configs, 1, cache)
    assert len(results) == 4
    assert cache.stats.hits >= 4


# ------------------------------------------------------------ plan-cache axis
#
# A cold cross-seed sweep: eight points that differ only in ``base_seed``,
# so they are distinct experiments (nothing is served from the result or
# activity tiers — both are disabled here) but share one execution plan.
# With the plan tier on, the device/pattern/launch/monitor bundle is built
# once and reused seven times; with it off, every point rebuilds it.  The
# ratio of the two benchmarks is the plan cache's contribution to cold
# sweep latency (the estimation work is identical in both).


def _cross_seed_sweep_configs():
    return sweep_configs(
        _quiet_config(matrix_size=max(SIZE // 8, 32), seeds=2),
        "base_seed",
        list(range(2024, 2032)),
        target="config",
    )


def bench_sweep_cold_plan_cache(benchmark):
    """Cold 8-point cross-seed sweep, planning once (fresh PlanCache per round)."""
    configs = _cross_seed_sweep_configs()
    results = benchmark(
        lambda: run_configs(
            configs, 1, None, activity_cache=None, plan_cache=PlanCache(max_entries=16)
        )
    )
    assert len(results) == 8


def bench_sweep_cold_no_plan_cache(benchmark):
    """The same cold sweep rebuilding the plan at every point."""
    configs = _cross_seed_sweep_configs()
    results = benchmark(
        lambda: run_configs(configs, 1, None, activity_cache=None, plan_cache=None)
    )
    assert len(results) == 8


# --------------------------------------------------------------- backend axis
#
# The three execution backends run the same warm-activity-cache multi-seed
# sweep: every point re-runs the measurement pipeline but reuses the per-seed
# activity estimates, which is the steady state of repeated figure runs.
# ``threads`` should stay well ahead of ``processes`` here (no pool start-up,
# no result transfer), and all three return bit-for-bit identical results.


@pytest.fixture(scope="module")
def backend_sweep_state():
    """Prime one disk-backed activity tier shared by the backend benchmarks.

    ``REPRO_CACHE_DIR`` is pointed at a fresh temp directory so process-pool
    workers (which resolve their own default caches) see the same warm disk
    tier the in-process backends read through memory.  Everything touched —
    the environment variable, the process-wide default activity cache, the
    temp directory — is restored on teardown so later benchmark modules
    measure the same configuration they would in isolation.
    """
    import repro.cache.store as store

    saved_env = os.environ.get("REPRO_CACHE_DIR")
    saved_state = (store._default_activity_cache, store._default_activity_initialized)
    root = tempfile.mkdtemp(prefix="repro-bench-backends-")
    os.environ["REPRO_CACHE_DIR"] = root
    cache = ActivityCache(max_entries=4096, disk_dir=os.path.join(root, ACTIVITY_SUBDIR))
    set_default_activity_cache(cache)
    configs = sweep_configs(
        _quiet_config(
            pattern_family="sparsity",
            matrix_size=max(SIZE // 2, 64),
            seeds=BACKEND_SEEDS,
        ),
        "sparsity",
        [0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
    )
    run_configs(configs, cache=None, activity_cache=cache)  # warm the tier
    yield configs, cache
    if saved_env is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = saved_env
    store._default_activity_cache, store._default_activity_initialized = saved_state
    shutil.rmtree(root, ignore_errors=True)


def _run_backend_sweep(backend, configs, cache):
    results = run_configs(
        configs,
        workers=BACKEND_WORKERS,
        backend=backend,
        cache=None,
        activity_cache=cache,
    )
    assert len(results) == 6
    return results


def bench_sweep_backend_serial(benchmark, backend_sweep_state):
    """Warm-activity-cache sweep, inline reference backend."""
    benchmark(_run_backend_sweep, "serial", *backend_sweep_state)


def bench_sweep_backend_threads(benchmark, backend_sweep_state):
    """Warm-activity-cache sweep over the released-GIL thread pool."""
    benchmark(_run_backend_sweep, "threads", *backend_sweep_state)


def bench_sweep_backend_processes(benchmark, backend_sweep_state):
    """Warm-activity-cache sweep over the shared-memory process pool."""
    benchmark(_run_backend_sweep, "processes", *backend_sweep_state)


# ------------------------------------------------------- nogil thread scaling
#
# Direct evidence for the ``threads`` backend's premise: the bit-level toggle
# kernel (XOR + popcount + reduce) releases the GIL inside NumPy, so running
# N independent kernels on N threads should take about as long as one kernel
# on an N-core host — near-linear scaling.  Compare
# ``bench_nogil_kernel_sequential`` with ``bench_nogil_kernel_threads``: both
# process the same total work, so their ratio IS the scaling factor.  On a
# single-core host the ratio degenerates to ~1x (there is nothing to scale
# onto — the GIL is not the limiter); the GIL-release property itself is
# asserted core-count-independently by
# ``tests/test_parallel_backends.py::test_toggle_kernel_releases_gil``.

@pytest.fixture(scope="module")
def nogil_pool():
    pool = ThreadPoolExecutor(
        max_workers=BACKEND_WORKERS, thread_name_prefix="repro-bench-nogil"
    )
    yield pool
    pool.shutdown()


def _nogil_arrays():
    return [_random_words(SIZE) for _ in range(BACKEND_WORKERS)]


def bench_nogil_kernel_sequential(benchmark):
    """N toggle-kernel passes, one after another on the main thread."""
    arrays = _nogil_arrays()
    fractions = benchmark(
        lambda: [toggle_fraction_along_axis(words, 1) for words in arrays]
    )
    assert len(fractions) == BACKEND_WORKERS


def bench_nogil_kernel_threads(benchmark, nogil_pool):
    """The same N passes fanned out over N threads (near-linear speedup)."""
    arrays = _nogil_arrays()
    fractions = benchmark(
        lambda: list(
            nogil_pool.map(lambda words: toggle_fraction_along_axis(words, 1), arrays)
        )
    )
    assert len(fractions) == BACKEND_WORKERS
