"""Performance microbenchmarks of the simulator itself (pytest-benchmark).

These are conventional timing benchmarks (multiple rounds) covering the hot
paths of the library: bit-level popcount/toggle kernels, pattern generation,
switching-activity estimation (sequential and batched), a full harness run,
and cold-versus-warm sweep execution through the content-addressed result
cache.  They guard against regressions that would make the paper-scale
(2048^2) reproduction impractically slow.

``REPRO_BENCH_SIZE`` overrides the matrix dimension (default 1024); CI's
smoke job runs everything once at size 64 with ``--benchmark-disable`` so
crashes fail the build without timing flakiness.
"""

from __future__ import annotations

import os

import numpy as np

from repro.activity.engine import (
    activity_from_matrices,
    estimate_activity_batch,
)
from repro.activity.sampler import SamplingConfig
from repro.cache.store import ExperimentCache
from repro.dtypes import get_dtype
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.experiments.sweep import run_configs, sweep_configs
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.patterns.library import build_pattern
from repro.telemetry.sampler import TelemetryConfig
from repro.util.bits import popcount, toggle_fraction_along_axis
from repro.util.rng import derive_rng

SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "1024"))
#: Seed-batch width used by the batched-estimation benchmarks.
BATCH_SEEDS = 4


def _random_words(size):
    rng = derive_rng(5, "perf_words", size)
    return rng.integers(0, 1 << 16, size=(size, size), dtype=np.uint64).astype(np.uint16)


def _gaussian_operands(size, count):
    spec = get_dtype("fp16_t")
    problem = GemmProblem.square(size, dtype="fp16_t")
    pattern = build_pattern("gaussian", spec)
    operands = []
    for seed in range(count):
        a = pattern.generate(problem.a_shape, spec, derive_rng(2024, "A", seed))
        b = pattern.generate(problem.b_storage_shape, spec, derive_rng(2024, "B", seed))
        operands.append(GemmOperands(problem=problem, a=a, b_stored=b))
    return operands


def _quiet_config(**overrides):
    defaults = dict(
        pattern_family="gaussian",
        dtype="fp16_t",
        matrix_size=max(SIZE // 2, 64),
        seeds=1,
        telemetry=TelemetryConfig(noise_std_watts=0.0, drift_watts=0.0),
        include_process_variation=False,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def bench_popcount_1m_words(benchmark):
    words = _random_words(SIZE)
    counts = benchmark(popcount, words)
    assert counts.shape == words.shape


def bench_stream_toggle_1m_words(benchmark):
    words = _random_words(SIZE)
    fraction = benchmark(toggle_fraction_along_axis, words, 1)
    assert 0.4 < fraction < 0.6


def bench_pattern_generation_sorted_rows(benchmark):
    pattern = build_pattern("sorted_rows", "fp16_t", fraction=1.0)
    rng = derive_rng(6, "perf_pattern")
    values = benchmark(pattern.generate, (SIZE, SIZE), get_dtype("fp16_t"), rng)
    assert values.shape == (SIZE, SIZE)


def bench_activity_estimation_1024(benchmark):
    rng = derive_rng(7, "perf_activity")
    a = rng.normal(0, 210, size=(SIZE, SIZE))
    b = rng.normal(0, 210, size=(SIZE, SIZE))
    report = benchmark(
        activity_from_matrices, a, b, "fp16_t", True, SamplingConfig(output_samples=128)
    )
    assert 0.0 < report.operand_activity <= 1.2


def bench_activity_estimation_batched(benchmark):
    """All seeds of one config through the stacked batch engine at once."""
    operands = _gaussian_operands(SIZE // 2, BATCH_SEEDS)
    sampling = SamplingConfig(output_samples=128)
    reports = benchmark(estimate_activity_batch, operands, sampling)
    assert len(reports) == BATCH_SEEDS
    assert all(0.0 < r.operand_activity <= 1.2 for r in reports)


def bench_full_experiment_512(benchmark):
    config = _quiet_config(matrix_size=max(SIZE // 2, 128))
    # cache=None: this measures the harness itself, not the cache.
    result = benchmark(run_experiment, config, None)
    assert result.mean_power_watts > 25.0


def bench_sweep_cold(benchmark):
    """4-point sparsity sweep with caching disabled (every point computed)."""
    configs = sweep_configs(
        _quiet_config(pattern_family="sparsity", matrix_size=max(SIZE // 4, 64)),
        "sparsity",
        [0.0, 0.25, 0.5, 0.75],
    )
    results = benchmark(run_configs, configs, 1, None)
    assert len(results) == 4


def bench_sweep_warm_cache(benchmark):
    """The same sweep served entirely from a primed result cache.

    Compare against ``bench_sweep_cold``: the ratio is the speedup repeated
    figure/benchmark runs get from the content-addressed cache.
    """
    configs = sweep_configs(
        _quiet_config(pattern_family="sparsity", matrix_size=max(SIZE // 4, 64)),
        "sparsity",
        [0.0, 0.25, 0.5, 0.75],
    )
    cache = ExperimentCache(max_entries=16)
    run_configs(configs, cache=cache)  # prime
    results = benchmark(run_configs, configs, 1, cache)
    assert len(results) == 4
    assert cache.stats.hits >= 4
