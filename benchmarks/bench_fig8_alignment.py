"""Figure 8: bit alignment and Hamming weight of input values vs. GPU power.

Paper expectation: across floating point datatypes, higher bit alignment
and lower Hamming weight loosely correlate with lower average power, though
the trend is "not entirely consistent".
"""

from __future__ import annotations

from common import bench_settings, emit_figure
from repro.analysis.correlation import correlate_power_with_bit_metrics
from repro.experiments.figures import run_figure


def bench_fig8_alignment_hamming(benchmark):
    settings = bench_settings()
    figure = benchmark.pedantic(run_figure, args=("fig8", settings), rounds=1, iterations=1)
    emit_figure(figure)

    all_results = [
        result for sweep in figure.panels.values() for result in sweep.results
    ]
    summaries = {s.dtype: s for s in correlate_power_with_bit_metrics(all_results)}

    # Hamming weight should correlate positively with power for FP datatypes
    # (lower weight -> lower power), echoing the paper's loose trend.
    fp_dtypes = [d for d in settings.dtypes if d.startswith("fp")]
    positive = [summaries[d].hamming_spearman > 0 for d in fp_dtypes if d in summaries]
    assert any(positive), "expected a positive hamming-vs-power correlation for FP datatypes"
