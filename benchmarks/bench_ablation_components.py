"""Ablation: which datapath component carries each input-dependence trend?

DESIGN.md attributes different takeaways to different parts of the modeled
datapath (operand delivery and product/accumulator switching for the sorting
and similarity effects, the multiplier's partial-product density for the
sparsity and bit-zeroing effects).  This benchmark zeroes one component's
weight at a time, re-runs two signature experiments (full sorting and the
sorted-sparsity peak), and reports how the effect size changes.
"""

from __future__ import annotations

import json

import numpy as np

from common import RESULTS_DIR, bench_settings
from repro.activity.engine import activity_from_matrices
from repro.gpu.device import Device
from repro.kernels.gemm import GemmProblem
from repro.kernels.launch import plan_launch
from repro.patterns.library import build_pattern
from repro.power.components import ComponentWeights
from repro.power.model import PowerModel
from repro.util.rng import derive_rng
from repro.util.tables import format_table

COMPONENTS = ("operand", "multiplier", "datapath", "memory")


def _power_with_weights(device, problem, a, b, weights):
    launch = plan_launch(problem, device)
    activity = activity_from_matrices(a, b, dtype=problem.dtype)
    model = PowerModel(device, weights=weights)
    return model.estimate(launch, activity, include_process_variation=False).watts


def _run_ablation(size):
    device = Device.create("a100")
    problem = GemmProblem.square(size, dtype="fp16_t")
    dtype = "fp16_t"

    def matrices(family, **params):
        pattern = build_pattern(family, dtype, **params)
        a = pattern.generate((size, size), dtype, derive_rng(11, "A", family, tuple(params.items())))
        b = pattern.generate((size, size), dtype, derive_rng(11, "B", family, tuple(params.items())))
        return a, b

    workloads = {
        "gaussian": matrices("gaussian"),
        "sorted": matrices("sorted_rows", fraction=1.0),
        "sorted+35% sparsity": matrices("sorted_sparsity", sparsity=0.35),
        "75% sparsity": matrices("sparsity", sparsity=0.75),
    }

    rows = []
    results = {}
    weight_variants = {"full model": ComponentWeights()}
    for component in COMPONENTS:
        weight_variants[f"without {component}"] = ComponentWeights().without(component)

    for variant_name, weights in weight_variants.items():
        powers = {
            name: _power_with_weights(device, problem, a, b, weights)
            for name, (a, b) in workloads.items()
        }
        sorting_drop = powers["gaussian"] - powers["sorted"]
        sparsity_drop = powers["gaussian"] - powers["75% sparsity"]
        sorted_sparsity_bump = powers["sorted+35% sparsity"] - powers["sorted"]
        rows.append(
            [variant_name, powers["gaussian"], sorting_drop, sparsity_drop, sorted_sparsity_bump]
        )
        results[variant_name] = {
            "powers": powers,
            "sorting_drop_w": sorting_drop,
            "sparsity_drop_w": sparsity_drop,
            "sorted_sparsity_bump_w": sorted_sparsity_bump,
        }
    return rows, results


def bench_ablation_activity_components(benchmark):
    size = bench_settings().matrix_size
    rows, results = benchmark.pedantic(_run_ablation, args=(size,), rounds=1, iterations=1)

    table = format_table(
        ["model variant", "gaussian_W", "sorting_drop_W", "sparsity_drop_W", "sortsparse_bump_W"],
        rows,
        precision=2,
        title=f"Ablation of activity components (A100, fp16_t, {size}^2)",
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "ablation_components.txt").write_text(table + "\n")
    (RESULTS_DIR / "ablation_components.json").write_text(json.dumps(results, indent=2))

    full = results["full model"]
    # The sorting effect is carried by the toggle-driven components: removing
    # the operand path must shrink the sorting drop.
    assert results["without operand"]["sorting_drop_w"] < full["sorting_drop_w"]
    # The sparsity effect is carried largely by the multiplier: removing it
    # must shrink the sparsity drop.
    assert results["without multiplier"]["sparsity_drop_w"] < full["sparsity_drop_w"]
    # The sorted-sparsity bump (T13) disappears without the operand/datapath
    # toggles but survives in the full model.
    assert full["sorted_sparsity_bump_w"] > 0
    assert np.isfinite(full["sorted_sparsity_bump_w"])
