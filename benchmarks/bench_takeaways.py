"""Aggregate takeaway validation: reproduce T1-T15 in one report.

Runs the minimal sweep set required to evaluate every takeaway statement of
the paper and prints a PASS/FAIL table; the benchmark fails if any takeaway
is not reproduced.
"""

from __future__ import annotations

import json

from common import RESULTS_DIR, bench_settings
from repro.analysis.reporting import render_takeaway_report
from repro.analysis.takeaways import evaluate_takeaways, passed_fraction
from repro.experiments.figures.common import base_config, mean_sweep_values
from repro.experiments.harness import run_experiment
from repro.experiments.sweep import run_sweep


def _collect_sweeps(settings):
    def sweep(family, parameter, values, transpose_b=True, **params):
        config = base_config(settings, "fp16_t", pattern_family=family, **params)
        config = config.with_overrides(transpose_b=transpose_b)
        return run_sweep(config, parameter, values)

    fractions = [0.0, 0.5, 1.0]
    return {
        "std": sweep("gaussian", "std", [0.25, 1.0, 210.0, 4096.0], mean=0.0),
        "mean": sweep("gaussian", "mean", mean_sweep_values("fp16_t"), std=1.0),
        "value_set": sweep("value_set", "set_size", [1, 16, 256]),
        "bit_flip": sweep("bit_flip", "probability", [0.0, 0.1, 0.3, 0.5]),
        "lsb": sweep("randomize_lsb", "fraction", fractions),
        "msb": sweep("randomize_msb", "fraction", fractions),
        "sorted_rows": sweep("sorted_rows", "fraction", fractions, transpose_b=False),
        "sorted_aligned": sweep("sorted_rows", "fraction", fractions),
        "sorted_columns": sweep("sorted_columns", "fraction", fractions),
        "sorted_within_rows": sweep("sorted_within_rows", "fraction", fractions),
        "sparsity": sweep("sparsity", "sparsity", [0.0, 0.25, 0.5, 0.75, 1.0]),
        "sorted_sparsity": sweep("sorted_sparsity", "sparsity", [0.0, 0.15, 0.3, 0.45, 0.7, 1.0]),
        "zero_lsb": sweep("zero_lsb", "fraction", fractions),
        "zero_msb": sweep("zero_msb", "fraction", fractions),
    }


def _power_by_dtype(settings):
    powers = {}
    for dtype in settings.dtypes:
        result = run_experiment(base_config(settings, dtype, pattern_family="gaussian"))
        powers[dtype] = result.mean_power_watts
    return powers


def _run_takeaways(settings):
    sweeps = _collect_sweeps(settings)
    ranking = _power_by_dtype(settings)
    checks = evaluate_takeaways(sweeps, ranking)
    return checks


def bench_takeaways_t1_to_t15(benchmark):
    settings = bench_settings()
    checks = benchmark.pedantic(_run_takeaways, args=(settings,), rounds=1, iterations=1)

    report = render_takeaway_report(checks, title="Paper takeaways T1-T15 (reproduced)")
    print()
    print(report)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "takeaways.txt").write_text(report + "\n")
    (RESULTS_DIR / "takeaways.json").write_text(
        json.dumps([c.as_dict() for c in checks], indent=2)
    )

    assert len(checks) == 15
    assert passed_fraction(checks) == 1.0, [c.takeaway for c in checks if not c.passed]
