"""Tests for the pure estimation core (repro.core) and its wrappers.

The core/orchestration split only works if every layer above the pipeline
— the runner, the cached one-shot entry point, the sweep machinery and the
serving layer — produces bit-for-bit the pipeline's own output.  These
tests pin that equivalence plus the deprecation shim for the old harness
location of the moved constant.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import (
    MIN_MEASUREMENT_DURATION_S,
    EstimationPipeline,
    estimate_experiment,
)
from repro.experiments.harness import ExperimentRunner, run_experiment


class TestPipelineEquivalence:
    def test_all_entry_points_agree_bit_for_bit(self, quiet_config):
        config = quiet_config(seeds=2)
        pipeline_doc = EstimationPipeline(
            config, activity_cache=None, plan_cache=None
        ).run().as_dict()
        function_doc = estimate_experiment(
            config, activity_cache=None, plan_cache=None
        ).as_dict()
        runner_doc = ExperimentRunner(
            config, activity_cache=None, plan_cache=None
        ).run().as_dict()
        uncached_doc = run_experiment(
            config, cache=None, activity_cache=None, plan_cache=None
        ).as_dict()
        assert pipeline_doc == function_doc == runner_doc == uncached_doc

    def test_pipeline_is_deterministic(self, quiet_config):
        config = quiet_config()
        first = EstimationPipeline(config, activity_cache=None, plan_cache=None).run()
        second = EstimationPipeline(config, activity_cache=None, plan_cache=None).run()
        assert first.as_dict() == second.as_dict()

    def test_runner_mirrors_pipeline_state(self, quiet_config):
        runner = ExperimentRunner(quiet_config(), activity_cache=None, plan_cache=None)
        assert runner.plan is runner.pipeline.plan
        assert runner.device is runner.pipeline.device
        assert runner.power_model is runner.pipeline.power_model
        assert runner.runtime_model is runner.pipeline.runtime_model
        assert runner.activity_engine is runner.pipeline.activity_engine

    def test_reference_seed_path_matches_batched(self, quiet_config):
        # The per-seed reference path (kept for the old _run_seed hook) must
        # agree with the batched pipeline the seeds normally go through.
        config = quiet_config(seeds=2)
        pipeline = EstimationPipeline(config, activity_cache=None, plan_cache=None)
        batched = pipeline.run()
        reference = [
            pipeline.run_seed_reference(index) for index in range(config.seeds)
        ]
        assert [m.as_dict() for m in batched.measurements] == [
            m.as_dict() for m in reference
        ]


class TestMinimumDuration:
    def test_constant_is_exported_from_core(self):
        assert MIN_MEASUREMENT_DURATION_S == pytest.approx(3.0)

    def test_harness_shim_warns_but_works(self):
        import repro.experiments.harness as harness

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = harness.MIN_MEASUREMENT_DURATION_S
        assert value == MIN_MEASUREMENT_DURATION_S
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert "repro.core" in str(caught[0].message)

    def test_harness_unknown_attribute_still_raises(self):
        import repro.experiments.harness as harness

        with pytest.raises(AttributeError):
            harness.NO_SUCH_NAME
