"""Unit tests for repro.util.bits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ActivityError
from repro.util import bits


class TestPopcount:
    def test_known_values(self):
        arr = np.array([0, 1, 3, 255], dtype=np.uint8)
        assert bits.popcount(arr).tolist() == [0, 1, 2, 8]

    def test_uint16_values(self):
        arr = np.array([0x0000, 0xFFFF, 0x0F0F], dtype=np.uint16)
        assert bits.popcount(arr).tolist() == [0, 16, 8]

    def test_uint32_values(self):
        arr = np.array([0xFFFFFFFF, 0x80000001], dtype=np.uint32)
        assert bits.popcount(arr).tolist() == [32, 2]

    def test_uint64_values(self):
        arr = np.array([0xFFFFFFFFFFFFFFFF, 1], dtype=np.uint64)
        assert bits.popcount(arr).tolist() == [64, 1]

    def test_preserves_shape(self):
        arr = np.arange(12, dtype=np.uint16).reshape(3, 4)
        assert bits.popcount(arr).shape == (3, 4)

    def test_empty_array(self):
        arr = np.array([], dtype=np.uint32)
        assert bits.popcount(arr).size == 0

    def test_rejects_signed_input(self):
        with pytest.raises(ActivityError):
            bits.popcount(np.array([1, 2], dtype=np.int32))

    def test_rejects_float_input(self):
        with pytest.raises(ActivityError):
            bits.popcount(np.array([1.0, 2.0]))

    def test_matches_python_bin_count(self, rng):
        values = rng.integers(0, 2**32, size=200, dtype=np.uint64).astype(np.uint32)
        expected = [bin(int(v)).count("1") for v in values]
        assert bits.popcount(values).tolist() == expected

    def test_non_contiguous_input(self):
        arr = np.arange(20, dtype=np.uint32)[::2]
        expected = [bin(int(v)).count("1") for v in arr]
        assert bits.popcount(arr).tolist() == expected


class TestHammingWeight:
    def test_total_weight(self):
        arr = np.array([0xFF, 0x01], dtype=np.uint8)
        assert bits.hamming_weight(arr) == 9

    def test_fraction_all_ones(self):
        arr = np.full(10, 0xFFFF, dtype=np.uint16)
        assert bits.hamming_weight_fraction(arr) == pytest.approx(1.0)

    def test_fraction_all_zeros(self):
        arr = np.zeros(10, dtype=np.uint16)
        assert bits.hamming_weight_fraction(arr) == pytest.approx(0.0)

    def test_fraction_empty(self):
        assert bits.hamming_weight_fraction(np.array([], dtype=np.uint8)) == 0.0

    def test_fraction_random_near_half(self, rng):
        arr = rng.integers(0, 2**16, size=5000, dtype=np.uint64).astype(np.uint16)
        assert bits.hamming_weight_fraction(arr) == pytest.approx(0.5, abs=0.02)


class TestHammingDistanceAndAlignment:
    def test_distance_identical(self):
        arr = np.array([1, 2, 3], dtype=np.uint16)
        assert bits.hamming_distance(arr, arr).tolist() == [0, 0, 0]

    def test_distance_complement(self):
        arr = np.array([0x0000, 0xFFFF], dtype=np.uint16)
        other = np.bitwise_xor(arr, np.uint16(0xFFFF))
        assert bits.hamming_distance(arr, other).tolist() == [16, 16]

    def test_distance_shape_mismatch(self):
        with pytest.raises(ActivityError):
            bits.hamming_distance(
                np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8)
            )

    def test_distance_dtype_mismatch(self):
        with pytest.raises(ActivityError):
            bits.hamming_distance(
                np.zeros(3, dtype=np.uint8), np.zeros(3, dtype=np.uint16)
            )

    def test_alignment_identical_is_one(self):
        arr = np.array([5, 9, 200], dtype=np.uint8)
        assert bits.bit_alignment(arr, arr) == pytest.approx(1.0)

    def test_alignment_complement_is_zero(self):
        arr = np.array([0x0F, 0xF0], dtype=np.uint8)
        other = np.bitwise_xor(arr, np.uint8(0xFF))
        assert bits.bit_alignment(arr, other) == pytest.approx(0.0)

    def test_alignment_empty_is_one(self):
        empty = np.array([], dtype=np.uint8)
        assert bits.bit_alignment(empty, empty) == 1.0


class TestToggles:
    def test_toggle_count_simple(self):
        a = np.array([0b0000, 0b1111], dtype=np.uint8)
        b = np.array([0b0001, 0b1111], dtype=np.uint8)
        assert bits.toggle_count(a, b) == 1

    def test_toggle_fraction_complement(self):
        a = np.zeros(4, dtype=np.uint8)
        b = np.full(4, 0xFF, dtype=np.uint8)
        assert bits.toggle_fraction(a, b) == pytest.approx(1.0)

    def test_toggle_fraction_empty(self):
        empty = np.array([], dtype=np.uint8)
        assert bits.toggle_fraction(empty, empty) == 0.0

    def test_toggle_along_axis_constant_rows(self):
        arr = np.full((4, 8), 0xAB, dtype=np.uint8)
        assert bits.toggle_fraction_along_axis(arr, axis=1) == 0.0

    def test_toggle_along_axis_alternating(self):
        arr = np.tile(np.array([0x00, 0xFF], dtype=np.uint8), (3, 4))
        assert bits.toggle_fraction_along_axis(arr, axis=1) == pytest.approx(1.0)

    def test_toggle_along_axis_single_element(self):
        arr = np.array([[7]], dtype=np.uint8)
        assert bits.toggle_fraction_along_axis(arr, axis=1) == 0.0

    def test_toggle_along_axis_random_near_half(self, rng):
        arr = rng.integers(0, 256, size=(64, 64), dtype=np.uint64).astype(np.uint8)
        assert bits.toggle_fraction_along_axis(arr, axis=1) == pytest.approx(0.5, abs=0.03)

    def test_toggle_axis_zero_vs_one(self):
        # Constant along columns, alternating along rows.
        arr = np.tile(np.array([[0x00], [0xFF]], dtype=np.uint8), (2, 5))
        assert bits.toggle_fraction_along_axis(arr, axis=0) == pytest.approx(1.0)
        assert bits.toggle_fraction_along_axis(arr, axis=1) == 0.0

    def test_toggle_scalar_input_raises(self):
        with pytest.raises(ActivityError):
            bits.toggle_fraction_along_axis(np.uint8(3), axis=0)


class TestBitMasks:
    def test_low_bits_mask(self):
        assert bits.set_low_bits_mask(8, 3, np.dtype(np.uint8)) == 0b111
        assert bits.set_low_bits_mask(16, 0, np.dtype(np.uint16)) == 0
        assert bits.set_low_bits_mask(16, 16, np.dtype(np.uint16)) == 0xFFFF

    def test_high_bits_mask(self):
        assert bits.set_high_bits_mask(8, 1, np.dtype(np.uint8)) == 0b1000_0000
        assert bits.set_high_bits_mask(8, 8, np.dtype(np.uint8)) == 0xFF
        assert bits.set_high_bits_mask(32, 0, np.dtype(np.uint32)) == 0

    def test_masks_are_disjoint_and_complete(self):
        low = bits.set_low_bits_mask(16, 5, np.dtype(np.uint16))
        high = bits.set_high_bits_mask(16, 11, np.dtype(np.uint16))
        assert low & high == 0
        assert low | high == 0xFFFF

    def test_mask_out_of_range(self):
        with pytest.raises(ActivityError):
            bits.set_low_bits_mask(8, 9, np.dtype(np.uint8))
        with pytest.raises(ActivityError):
            bits.set_high_bits_mask(8, -1, np.dtype(np.uint8))

    def test_bit_width(self):
        assert bits.bit_width(np.zeros(1, dtype=np.uint8)) == 8
        assert bits.bit_width(np.zeros(1, dtype=np.uint16)) == 16
        assert bits.bit_width(np.zeros(1, dtype=np.uint32)) == 32
        assert bits.bit_width(np.zeros(1, dtype=np.uint64)) == 64
