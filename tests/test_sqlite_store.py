"""Tests for the SQLite disk-cache backend (repro.cache.sqlite_store)."""

from __future__ import annotations

import json
import os
import sqlite3

import pytest

import repro.faults as faults
from repro.cache.resilience import RetryPolicy
from repro.cache.sqlite_store import (
    DB_FILENAME,
    SqliteStore,
    delete_entries,
    read_entries,
)
from repro.cache.store import (
    ActivityCache,
    ExperimentCache,
    resolve_disk_backend,
)
from repro.errors import ExperimentError


class TestSqliteStore:
    def test_round_trip(self, tmp_path):
        with SqliteStore(tmp_path) as store:
            assert store.get("k") is None
            assert not store.contains("k")
            store.put("k", '{"value": 1}')
            assert store.get("k") == '{"value": 1}'
            assert store.contains("k")
            assert len(store) == 1
        # A fresh connection (fresh process, conceptually) reads it back.
        with SqliteStore(tmp_path) as reader:
            assert reader.get("k") == '{"value": 1}'

    def test_put_replaces(self, tmp_path):
        with SqliteStore(tmp_path) as store:
            store.put("k", "old")
            store.put("k", "new")
            assert store.get("k") == "new"
            assert len(store) == 1

    def test_delete_and_clear(self, tmp_path):
        with SqliteStore(tmp_path) as store:
            store.put("a", "1")
            store.put("b", "2")
            store.delete("a")
            store.delete("a")  # absent: no-op
            assert store.get("a") is None
            store.clear()
            assert len(store) == 0
        assert (tmp_path / DB_FILENAME).exists()  # clear keeps the database

    def test_entries_report_size_and_mtime(self, tmp_path):
        with SqliteStore(tmp_path) as store:
            store.put("k", "abcd", mtime=123.5)
            rows = list(store.entries())
        assert rows == [("k", 4, 123.5)]

    def test_wal_mode(self, tmp_path):
        with SqliteStore(tmp_path) as store:
            (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode.lower() == "wal"


class TestLegacyMigration:
    def test_json_files_are_imported_and_removed(self, tmp_path):
        (tmp_path / "old.json").write_text('{"legacy": true}')
        os.utime(tmp_path / "old.json", (1000.0, 1000.0))
        with SqliteStore(tmp_path) as store:
            assert store.get("old") == '{"legacy": true}'
            rows = dict(
                (key, mtime) for key, _size, mtime in store.entries()
            )
        assert rows["old"] == 1000.0  # file mtime preserved for GC age accounting
        assert not (tmp_path / "old.json").exists()

    def test_database_row_wins_over_legacy_file(self, tmp_path):
        with SqliteStore(tmp_path) as store:
            store.put("k", "from-db")
        (tmp_path / "k.json").write_text("from-file")
        with SqliteStore(tmp_path) as store:
            assert store.get("k") == "from-db"
        assert not (tmp_path / "k.json").exists()

    def test_cache_reads_migrated_legacy_entries(self, quiet_config, tmp_path):
        # An entry written by the legacy backend is readable through the
        # sqlite backend after migration.
        from repro.cache.fingerprint import experiment_fingerprint
        from repro.experiments.harness import run_experiment

        config = quiet_config()
        key = experiment_fingerprint(config)
        result = run_experiment(config, cache=None)
        legacy = ExperimentCache(disk_dir=tmp_path, disk_backend="json")
        legacy.put(key, result)
        assert (tmp_path / f"{key}.json").exists()

        migrated = ExperimentCache(disk_dir=tmp_path, disk_backend="sqlite")
        loaded = migrated.get(key)
        assert loaded is not None
        assert loaded.as_dict() == result.as_dict()
        assert not (tmp_path / f"{key}.json").exists()


class TestBackendEquivalence:
    def test_same_payload_documents(self, tmp_path):
        """Both backends persist the identical JSON document per key."""
        from repro.activity.report import ActivityReport

        report = ActivityReport(
            operand_activity=0.5,
            multiplier_activity=0.4,
            datapath_activity=0.3,
            memory_activity=0.2,
            operand_toggle_a=0.11,
            operand_toggle_b=0.12,
            multiplier_hw_product=0.13,
            zero_mac_fraction=0.14,
            product_toggle=0.15,
            accumulator_toggle=0.16,
            memory_toggle=0.17,
            a_hamming_fraction=0.5,
            b_hamming_fraction=0.5,
            bit_alignment=0.18,
            dtype="fp16_t",
            shape=(4, 4, 4),
            output_samples=8,
        )
        json_cache = ActivityCache(disk_dir=tmp_path / "json", disk_backend="json")
        sqlite_cache = ActivityCache(disk_dir=tmp_path / "sql", disk_backend="sqlite")
        json_cache.put("k", report)
        sqlite_cache.put("k", report)

        file_doc = json.loads((tmp_path / "json" / "k.json").read_text())
        with SqliteStore(tmp_path / "sql") as store:
            db_doc = json.loads(store.get("k"))
        assert file_doc == db_doc

        # And each backend round-trips to an equal report.
        assert (
            ActivityCache(disk_dir=tmp_path / "json", disk_backend="json").get("k")
            == ActivityCache(disk_dir=tmp_path / "sql", disk_backend="sqlite").get("k")
            == report
        )

    def test_resolve_disk_backend(self, monkeypatch):
        assert resolve_disk_backend("json") == "json"
        assert resolve_disk_backend("sqlite") == "sqlite"
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        assert resolve_disk_backend("auto") == "sqlite"
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "json")
        assert resolve_disk_backend("auto") == "json"
        # Explicit names are never overridden by the environment.
        assert resolve_disk_backend("sqlite") == "sqlite"
        with pytest.raises(ExperimentError):
            resolve_disk_backend("bogus")
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "carrier-pigeon")
        with pytest.raises(ExperimentError):
            resolve_disk_backend("auto")


class TestGcHelpers:
    def test_read_entries_missing_db(self, tmp_path):
        assert read_entries(tmp_path / DB_FILENAME) == []

    def test_read_entries_corrupt_db(self, tmp_path):
        path = tmp_path / DB_FILENAME
        path.write_bytes(b"this is not a database")
        assert read_entries(path) == []

    def test_read_entries_is_side_effect_free(self, tmp_path):
        # Scanning must not trigger legacy migration: stats/ls/dry-run
        # passes never mutate the directory they describe.
        with SqliteStore(tmp_path) as store:
            store.put("k", "v")
        (tmp_path / "legacy.json").write_text("{}")
        rows = read_entries(tmp_path / DB_FILENAME)
        assert [key for key, _, _ in rows] == ["k"]
        assert (tmp_path / "legacy.json").exists()

    def test_delete_entries(self, tmp_path):
        with SqliteStore(tmp_path) as store:
            for index in range(3):
                store.put(f"k{index}", "v")
        removed = delete_entries(tmp_path / DB_FILENAME, ["k0", "k2", "absent"])
        assert removed == 2
        assert [key for key, _, _ in read_entries(tmp_path / DB_FILENAME)] == ["k1"]
        assert delete_entries(tmp_path / DB_FILENAME, []) == 0
        assert delete_entries(tmp_path / "nowhere.sqlite", ["k"]) == 0

    def test_errors_surface_as_oserror(self, tmp_path):
        store = SqliteStore(tmp_path)
        store.close()
        with pytest.raises(OSError):
            store.get("k")
        with pytest.raises(OSError):
            store.put("k", "v")


class TestLifecycleOverSqlite:
    def _populate(self, root, tier, keys, base_mtime=1_000_000_000.0):
        from repro.cache.lifecycle import tier_dir

        directory = tier_dir(root, tier)
        with SqliteStore(directory) as store:
            for offset, key in enumerate(keys):
                store.put(key, json.dumps({"pad": "x" * 64}), mtime=base_mtime + offset)

    def test_scan_sees_rows(self, tmp_path):
        from repro.cache.lifecycle import cache_dir_stats, scan_cache_dir

        self._populate(tmp_path, "experiment", ["a", "b"])
        self._populate(tmp_path, "activity", ["c"])
        entries = scan_cache_dir(tmp_path)
        assert sorted(entry.key for entry in entries) == ["a", "b", "c"]
        assert all(entry.backend == "sqlite" for entry in entries)
        stats = cache_dir_stats(tmp_path, now=1_000_000_100.0)
        assert stats["tiers"]["experiment"]["entries"] == 2
        assert stats["tiers"]["activity"]["entries"] == 1

    def test_prune_removes_rows(self, tmp_path):
        from repro.cache.lifecycle import prune_cache_dir, scan_cache_dir

        self._populate(tmp_path, "experiment", ["old", "new"])
        report = prune_cache_dir(
            tmp_path, max_age_s=0.5, now=1_000_000_001.0
        )
        assert {entry.key for entry in report.removed} == {"old"}
        assert {entry.key for entry in scan_cache_dir(tmp_path)} == {"new"}
        # The row really is gone from the database, not just the report.
        with sqlite3.connect(tmp_path / DB_FILENAME) as conn:
            rows = conn.execute("SELECT key FROM entries").fetchall()
        assert rows == [("new",)]

    def test_dry_run_prune_mutates_nothing(self, tmp_path):
        from repro.cache.lifecycle import prune_cache_dir, scan_cache_dir

        self._populate(tmp_path, "experiment", ["a"])
        (tmp_path / "legacy.json").write_text("{}")
        report = prune_cache_dir(
            tmp_path, max_age_s=0.5, now=2_000_000_000.0, dry_run=True
        )
        assert {entry.key for entry in report.removed} >= {"a"}
        assert {entry.key for entry in scan_cache_dir(tmp_path)} >= {"a"}
        assert (tmp_path / "legacy.json").exists()  # no migration side effect


class TestChaosInjection:
    """Chaos parametrization: every injected sqlite fault leaves the store
    either serving correct data or raising OSError — never torn entries."""

    @pytest.fixture(autouse=True)
    def _clean_schedule(self):
        yield
        faults.reset()

    @pytest.mark.parametrize(
        "schedule_text",
        [
            "cache.sqlite.write:busy@0.5",
            "cache.sqlite.read:busy@0.5",
            "cache.sqlite.write:busy@0.5;cache.sqlite.read:busy@0.5",
        ],
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_busy_chaos_roundtrip_is_lossless(self, tmp_path, schedule_text, seed):
        retry = RetryPolicy(attempts=6, base_delay_s=0.0005, max_delay_s=0.002)
        faults.install_schedule(
            faults.FaultSchedule(faults.parse_schedule(schedule_text), seed=seed)
        )
        store = SqliteStore(tmp_path, retry=retry)
        expected = {}
        for index in range(8):
            key, payload = f"key{index}", json.dumps({"index": index})
            try:
                store.put(key, payload)
            except OSError:
                continue  # typed failure: the entry must then be absent...
            expected[key] = payload
        faults.uninstall_schedule()
        for key, payload in expected.items():
            assert store.get(key) == payload  # ...never torn or wrong
        assert len(store) == len(expected)
        store.close()
