"""Unit tests for repro.patterns.bitsim (bit-similarity transforms)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtypes import get_dtype
from repro.errors import PatternError
from repro.patterns.bitsim import (
    RandomBitFlipTransform,
    RandomizeHighBitsTransform,
    RandomizeLowBitsTransform,
    resolve_bit_count,
)
from repro.util.bits import hamming_distance


def _words(values, dtype_name):
    return get_dtype(dtype_name).encode(np.asarray(values, dtype=np.float64))


class TestResolveBitCount:
    def test_count_passthrough(self):
        assert resolve_bit_count(get_dtype("fp16"), 5, None) == 5

    def test_fraction_resolution(self):
        assert resolve_bit_count(get_dtype("fp16"), None, 0.5) == 8
        assert resolve_bit_count(get_dtype("fp32"), None, 1.0) == 32

    def test_both_or_neither_rejected(self):
        with pytest.raises(PatternError):
            resolve_bit_count(get_dtype("fp16"), 1, 0.5)
        with pytest.raises(PatternError):
            resolve_bit_count(get_dtype("fp16"), None, None)

    def test_out_of_range_rejected(self):
        with pytest.raises(PatternError):
            resolve_bit_count(get_dtype("fp16"), 17, None)
        with pytest.raises(PatternError):
            resolve_bit_count(get_dtype("fp16"), None, 1.5)


class TestRandomBitFlip:
    def test_zero_probability_is_identity(self, rng):
        values = np.full((8, 8), 3.25)
        out = RandomBitFlipTransform(0.0).apply(values, get_dtype("fp16"), rng)
        np.testing.assert_array_equal(out, values)

    def test_flip_fraction_matches_probability(self, rng):
        spec = get_dtype("fp16")
        values = np.full((64, 64), 17.5)
        out = RandomBitFlipTransform(0.25).apply(values, spec, rng)
        distance = hamming_distance(spec.encode(values), spec.encode(out))
        assert distance.mean() / spec.bits == pytest.approx(0.25, abs=0.03)

    def test_output_still_representable(self, rng):
        spec = get_dtype("int8")
        values = np.full((16, 16), 21.0)
        out = RandomBitFlipTransform(0.5).apply(values, spec, rng)
        np.testing.assert_array_equal(spec.quantize(out), out)

    def test_does_not_mutate_input(self, rng):
        values = np.full((8, 8), 3.25)
        original = values.copy()
        RandomBitFlipTransform(0.5).apply(values, get_dtype("fp16"), rng)
        np.testing.assert_array_equal(values, original)

    def test_invalid_probability(self):
        with pytest.raises(PatternError):
            RandomBitFlipTransform(1.5)


class TestRandomizeLowBits:
    def test_zero_count_identity(self, rng):
        values = np.full((4, 4), 11.0)
        out = RandomizeLowBitsTransform(count=0).apply(values, get_dtype("fp16"), rng)
        np.testing.assert_array_equal(out, values)

    def test_only_low_bits_change(self, rng):
        spec = get_dtype("fp16")
        values = np.full((32, 32), 123.5)
        out = RandomizeLowBitsTransform(count=4).apply(values, spec, rng)
        changed = np.bitwise_xor(spec.encode(values), spec.encode(out))
        assert int(np.bitwise_or.reduce(changed.reshape(-1))) <= 0xF

    def test_more_bits_more_entropy(self, rng):
        spec = get_dtype("fp16")
        values = np.full((64, 64), 123.5)
        few = RandomizeLowBitsTransform(count=2).apply(values, spec, rng)
        many = RandomizeLowBitsTransform(count=12).apply(values, spec, rng)
        assert len(np.unique(many)) > len(np.unique(few))

    def test_fraction_variant(self, rng):
        spec = get_dtype("int8")
        values = np.full((16, 16), 77.0)
        out = RandomizeLowBitsTransform(fraction=1.0).apply(values, spec, rng)
        assert len(np.unique(out)) > 1


class TestRandomizeHighBits:
    def test_only_high_bits_change(self, rng):
        spec = get_dtype("fp16")
        values = np.full((32, 32), 123.5)
        out = RandomizeHighBitsTransform(count=4).apply(values, spec, rng)
        changed = np.bitwise_xor(spec.encode(values), spec.encode(out))
        low_mask = (1 << 12) - 1
        assert int(np.bitwise_or.reduce(changed.reshape(-1)) & low_mask) == 0

    def test_high_bit_randomization_changes_magnitudes_widely(self, rng):
        spec = get_dtype("fp16")
        values = np.full((64, 64), 123.5)
        out = RandomizeHighBitsTransform(count=6).apply(values, spec, rng)
        finite = out[np.isfinite(out)]
        assert np.abs(finite).max() > np.abs(values).max()

    def test_zero_count_identity(self, rng):
        values = np.full((4, 4), 11.0)
        out = RandomizeHighBitsTransform(count=0).apply(values, get_dtype("fp32"), rng)
        np.testing.assert_array_equal(out, values)

    def test_full_width_randomization_near_uniform_bits(self, rng):
        spec = get_dtype("int8")
        values = np.full((128, 128), 5.0)
        out = RandomizeHighBitsTransform(fraction=1.0).apply(values, spec, rng)
        words = spec.encode(out)
        from repro.util.bits import hamming_weight_fraction

        assert hamming_weight_fraction(words) == pytest.approx(0.5, abs=0.02)

    def test_describe_round_trip(self):
        t = RandomizeHighBitsTransform(fraction=0.5)
        assert t.describe()["name"] == "randomize_msb"
        assert t.describe()["fraction"] == 0.5
