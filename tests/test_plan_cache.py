"""Tests for the experiment plan cache (:mod:`repro.experiments.plan`).

Covers the tier's four promises:

* **Keying** — :func:`plan_fingerprint` is invariant under everything the
  plan does not depend on (seed loop, iterations, measurement procedure,
  labels) and invalidated by everything it does (workload geometry, device,
  telemetry, resolved specs, code version).
* **Build-once** — a cold sweep builds each distinct plan exactly once per
  cache (asserted by call counting), including under concurrent threads and
  inside persistent process-pool workers across chunks.
* **Equivalence** — results are bit-for-bit identical with the plan cache
  on or off, on every execution backend.
* **Lifecycle** — default-instance creation honours the environment knobs
  and the process-pool worker initializer forwards enable/disable.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cache.fingerprint import code_fingerprint, plan_fingerprint
from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentRunner, run_experiment
from repro.experiments.plan import (
    ExperimentPlan,
    PlanCache,
    build_plan,
    build_problem,
    build_workload_pattern,
    clear_workload_pattern_memo,
    get_default_plan_cache,
    resolve_plan_cache,
    set_default_plan_cache,
    workload_pattern_key,
)
from repro.experiments.sweep import (
    _process_worker_init,
    run_configs,
    run_sweep,
    sweep_configs,
)
from repro.gpu import specs as gpu_specs
from repro.kernels.launch import plan_launch
from repro.parallel import BACKENDS, chunk_budget_bytes
from repro.parallel.backends import ProcessExecutor
from repro.activity.sampler import SamplingConfig
from repro.telemetry.sampler import TelemetryConfig


# Top-level helper for the persistent-worker tests (must be picklable).
def _plan_builds_after_running(config):
    """Pool-worker probe: run one experiment, report this worker's plan tier."""
    ExperimentRunner(config, activity_cache=None).run()
    cache = get_default_plan_cache()
    if cache is None:
        return (os.getpid(), None, 0)
    return (os.getpid(), cache.stats.builds, len(cache))


@pytest.fixture
def fresh_default_plan_cache():
    """Reset the process-wide default plan cache around a test."""
    import repro.experiments.plan as plan_module

    saved = (plan_module._default_plan_cache, plan_module._default_plan_initialized)
    plan_module._default_plan_cache = None
    plan_module._default_plan_initialized = False
    yield plan_module
    plan_module._default_plan_cache, plan_module._default_plan_initialized = saved


def _as_dicts(results):
    return [result.as_dict() for result in results]


# ----------------------------------------------------------------- fingerprint


class TestPlanFingerprint:
    def test_deterministic(self, quiet_config):
        config = quiet_config()
        assert plan_fingerprint(config) == plan_fingerprint(config)

    def test_invariant_under_measurement_procedure(self, quiet_config):
        """Everything outside the plan — the seed loop, iteration counts,
        trimming, sampling, process variation, labels — must not change the
        key: that is what lets cross-seed/procedure sweeps share one plan."""
        config = quiet_config()
        base = plan_fingerprint(config)
        for overrides in (
            {"seeds": 7},
            {"base_seed": 999},
            {"iterations": 123},
            {"warmup_trim_s": 1.5},
            {"include_process_variation": True},
            {"label": "renamed"},
            {"sampling": SamplingConfig(output_samples=16)},
        ):
            assert plan_fingerprint(config.with_overrides(**overrides)) == base

    def test_sensitive_to_plan_inputs(self, quiet_config):
        config = quiet_config()
        base = plan_fingerprint(config)
        for overrides in (
            {"pattern_family": "sparsity", "pattern_params": {"sparsity": 0.5}},
            {"pattern_params": {"std": 16.0}},
            {"dtype": "fp32"},
            {"matrix_size": 256},
            {"transpose_b": False},
            {"gpu": "h100"},
            {"instance_id": 3},
            {"telemetry": TelemetryConfig(noise_std_watts=1.0)},
        ):
            assert plan_fingerprint(config.with_overrides(**overrides)) != base

    def test_code_version_invalidates(self, quiet_config):
        config = quiet_config()
        assert plan_fingerprint(config) == plan_fingerprint(
            config, code_version=code_fingerprint()
        )
        assert plan_fingerprint(config) != plan_fingerprint(
            config, code_version="other-version"
        )

    def test_device_spec_change_invalidates(self, quiet_config, monkeypatch):
        """Re-registering a GPU name with a different spec must never serve
        a plan built for the old silicon."""
        config = quiet_config()
        before = plan_fingerprint(config)
        modified = dataclasses.replace(
            gpu_specs.get_gpu_spec("a100"),
            sm_count=gpu_specs.get_gpu_spec("a100").sm_count + 8,
        )
        monkeypatch.setitem(gpu_specs.GPU_SPECS, "a100", modified)
        assert plan_fingerprint(config) != before

    def test_distinct_from_other_fingerprint_kinds(self, quiet_config):
        from repro.cache.fingerprint import activity_fingerprint, experiment_fingerprint

        config = quiet_config()
        assert plan_fingerprint(config) != experiment_fingerprint(config)
        assert plan_fingerprint(config) != activity_fingerprint(config, seed=0)


# ----------------------------------------------------------------- the cache


class TestPlanCache:
    def test_get_or_build_builds_once(self, quiet_config):
        cache = PlanCache(max_entries=4)
        config = quiet_config()
        plan = build_plan(config, cache=cache)
        again = build_plan(config, cache=cache)
        assert again is plan  # identity: plans are immutable, no copies
        assert cache.stats.builds == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_lru_eviction(self, quiet_config):
        cache = PlanCache(max_entries=2)
        for size in (64, 96, 128):
            build_plan(quiet_config(matrix_size=size), cache=cache)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest (64) was evicted; rebuilding it counts a new build.
        build_plan(quiet_config(matrix_size=64), cache=cache)
        assert cache.stats.builds == 4

    def test_validation(self, quiet_config):
        with pytest.raises(ExperimentError):
            PlanCache(max_entries=0)
        cache = PlanCache()
        with pytest.raises(ExperimentError):
            cache.put("key", "not a plan")
        with pytest.raises(ExperimentError):
            resolve_plan_cache("bogus")

    def test_concurrent_get_or_build_builds_once(self, quiet_config):
        """Racing threads on a cold key must still build exactly once (the
        build runs under the cache lock)."""
        cache = PlanCache()
        config = quiet_config()
        with ThreadPoolExecutor(max_workers=8) as pool:
            plans = list(pool.map(lambda _: build_plan(config, cache=cache), range(16)))
        assert cache.stats.builds == 1
        assert all(plan is plans[0] for plan in plans)

    def test_describe_memory_shape(self, quiet_config):
        cache = PlanCache(max_entries=8)
        build_plan(quiet_config(), cache=cache)
        info = cache.describe_memory()
        assert info["entries"] == 1
        assert info["max_entries"] == 8
        assert info["disk_dir"] is None
        assert info["builds"] == info["puts"] == 1
        for key in ("hits", "misses", "hit_rate", "evictions"):
            assert key in info
        # A direct put() counts as a put but not a build.
        plan = build_plan(quiet_config(matrix_size=96), cache=None)
        cache.put(plan.fingerprint, plan)
        info = cache.describe_memory()
        assert info["puts"] == 2
        assert info["builds"] == 1


# ----------------------------------------------------------------- build_plan


class TestBuildPlan:
    def test_plan_matches_scratch_construction(self, quiet_config):
        config = quiet_config()
        plan = build_plan(config, cache=None)
        assert isinstance(plan, ExperimentPlan)
        assert plan.fingerprint == plan_fingerprint(config)
        problem = build_problem(config)
        assert plan.problem == problem
        assert plan.launch.describe() == plan_launch(problem, plan.device).describe()
        assert type(plan.pattern) is type(build_workload_pattern(config))
        assert plan.monitor.device is plan.device
        assert plan.device.name == config.gpu

    def test_cache_none_constructs_fresh(self, quiet_config):
        config = quiet_config()
        assert build_plan(config, cache=None) is not build_plan(config, cache=None)

    def test_default_knobs(self, fresh_default_plan_cache, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE_MAX_ENTRIES", "7")
        cache = get_default_plan_cache()
        assert cache is not None and cache.max_entries == 7

    def test_default_disabled_by_zero_entries(self, fresh_default_plan_cache, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE_MAX_ENTRIES", "0")
        assert get_default_plan_cache() is None

    def test_default_disabled_by_no_cache(self, fresh_default_plan_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert get_default_plan_cache() is None

    def test_set_default_plan_cache(self, fresh_default_plan_cache):
        mine = PlanCache(max_entries=3)
        set_default_plan_cache(mine)
        assert get_default_plan_cache() is mine
        assert resolve_plan_cache(None) is None

    def test_peek_default_caches_includes_plan_tier(
        self, fresh_default_plan_cache, quiet_config
    ):
        """The cache CLI's live stats report the plan tier once it exists."""
        from repro.cache.store import peek_default_caches

        set_default_plan_cache(PlanCache(max_entries=4))
        assert "plan" in peek_default_caches()
        build_plan(quiet_config())  # default sentinel -> the tier we just set
        assert peek_default_caches()["plan"].describe_memory()["entries"] == 1
        set_default_plan_cache(None)
        assert "plan" not in peek_default_caches()

    def test_runner_shares_plan_through_cache(self, quiet_config):
        cache = PlanCache()
        config = quiet_config()
        first = ExperimentRunner(config, activity_cache=None, plan_cache=cache)
        second = ExperimentRunner(
            config.with_overrides(base_seed=777), activity_cache=None, plan_cache=cache
        )
        assert first.plan is second.plan  # base_seed is outside the plan key
        assert cache.stats.builds == 1


# --------------------------------------------------------------- equivalence


class TestSweepPlanEquivalence:
    @pytest.fixture
    def sweep(self, quiet_config):
        """3 distinct configs x 4 seeds (the acceptance-criteria shape)."""
        return sweep_configs(
            quiet_config(pattern_family="sparsity", matrix_size=32, seeds=4),
            "sparsity",
            [0.0, 0.5, 1.0],
        )

    @pytest.fixture
    def reference(self, sweep):
        return _as_dicts(
            run_configs(sweep, workers=1, cache=None, activity_cache=None, plan_cache=None)
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_for_bit_on_off(self, sweep, reference, backend):
        with_cache = run_configs(
            sweep,
            workers=2,
            cache=None,
            activity_cache=None,
            plan_cache=PlanCache(),
            backend=backend,
        )
        without_cache = run_configs(
            sweep,
            workers=2,
            cache=None,
            activity_cache=None,
            plan_cache=None,
            backend=backend,
        )
        assert _as_dicts(with_cache) == reference
        assert _as_dicts(without_cache) == reference

    def test_run_experiment_on_off(self, quiet_config):
        config = quiet_config(seeds=2)
        on = run_experiment(config, None, None, plan_cache=PlanCache())
        off = run_experiment(config, None, None, plan_cache=None)
        assert on.as_dict() == off.as_dict()

    @pytest.mark.parametrize("backend", ("serial", "threads"))
    def test_cold_sweep_builds_each_plan_once(self, sweep, backend):
        """3 distinct configs x 4 seeds: exactly 3 plan builds, whatever the
        in-process backend or worker count."""
        cache = PlanCache()
        run_configs(
            sweep,
            workers=2,
            cache=None,
            activity_cache=None,
            plan_cache=cache,
            backend=backend,
        )
        assert cache.stats.builds == 3
        # A second pass over the same sweep is all hits, still 3 builds.
        run_configs(
            sweep,
            workers=2,
            cache=None,
            activity_cache=None,
            plan_cache=cache,
            backend=backend,
        )
        assert cache.stats.builds == 3
        assert cache.stats.hits >= 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_sweep_plans_once_per_distinct_config(self, quiet_config, backend):
        """`run_sweep` forwards the plan tier: 3 configs x 4 seeds, cold,
        on every backend — bit-for-bit equal to the uncached run, and (for
        the in-process backends, where the parent's instance is observable)
        exactly 3 builds."""
        cache = PlanCache()
        swept = run_sweep(
            quiet_config(pattern_family="sparsity", matrix_size=32, seeds=4),
            "sparsity",
            [0.0, 0.5, 1.0],
            workers=2,
            cache=None,
            activity_cache=None,
            plan_cache=cache,
            backend=backend,
        )
        reference = run_sweep(
            quiet_config(pattern_family="sparsity", matrix_size=32, seeds=4),
            "sparsity",
            [0.0, 0.5, 1.0],
            cache=None,
            activity_cache=None,
            plan_cache=None,
        )
        assert _as_dicts(swept.results) == _as_dicts(reference.results)
        if backend != "processes":  # workers keep their own (remote) caches
            assert cache.stats.builds == 3

    def test_cross_seed_sweep_shares_one_plan(self, quiet_config):
        """Points differing only in base_seed are distinct experiments but
        share one plan."""
        configs = sweep_configs(
            quiet_config(matrix_size=32, seeds=4),
            "base_seed",
            [1, 2, 3, 4],
            target="config",
        )
        cache = PlanCache()
        results = run_configs(
            configs, workers=1, cache=None, activity_cache=None, plan_cache=cache
        )
        assert len(results) == 4
        assert cache.stats.builds == 1
        assert cache.stats.hits == 3


# ------------------------------------------------------- pattern sharing


class TestWorkloadPatternSharing:
    @pytest.fixture(autouse=True)
    def fresh_memo(self):
        clear_workload_pattern_memo()
        yield
        clear_workload_pattern_memo()

    def test_key_ignores_everything_but_the_workload(self, quiet_config):
        config = quiet_config()
        base = workload_pattern_key(config)
        for overrides in (
            {"gpu": "h100"},
            {"instance_id": 3},
            {"matrix_size": 256},
            {"transpose_b": False},
            {"seeds": 7},
            {"iterations": 123},
            {"label": "renamed"},
        ):
            assert workload_pattern_key(config.with_overrides(**overrides)) == base
        for overrides in (
            {"pattern_family": "sparsity", "pattern_params": {"sparsity": 0.5}},
            {"pattern_params": {"std": 16.0}},
            {"dtype": "fp32"},
        ):
            assert workload_pattern_key(config.with_overrides(**overrides)) != base

    def test_cross_device_plans_share_one_pattern(self, quiet_config):
        """Plans differing only in device reuse the workload's pattern object
        instead of each constructing an identical one."""
        plans = [
            build_plan(quiet_config(gpu=gpu), cache=None)
            for gpu in ("v100", "a100", "h100")
        ]
        assert len({plan.fingerprint for plan in plans}) == 3  # distinct plans
        assert all(plan.pattern is plans[0].pattern for plan in plans)

    def test_shared_false_builds_private_instances(self, quiet_config):
        config = quiet_config()
        shared = build_workload_pattern(config)
        assert build_workload_pattern(config) is shared
        private = build_workload_pattern(config, shared=False)
        assert private is not shared
        assert type(private) is type(shared)

    def test_clear_drops_shared_patterns(self, quiet_config):
        config = quiet_config()
        before = build_workload_pattern(config)
        clear_workload_pattern_memo()
        assert build_workload_pattern(config) is not before

    def test_sharing_does_not_change_results(self, quiet_config):
        """Pattern sharing is pure reuse: results are bit-for-bit identical
        with a shared and a private pattern object."""
        config = quiet_config(seeds=2)
        shared_run = run_experiment(config, None, None, plan_cache=None)
        clear_workload_pattern_memo()
        fresh_run = run_experiment(config, None, None, plan_cache=None)
        assert shared_run.as_dict() == fresh_run.as_dict()

    def test_memo_is_bounded(self, quiet_config):
        import repro.experiments.plan as plan_module

        for index in range(plan_module._PATTERN_MEMO_MAX_ENTRIES + 8):
            build_workload_pattern(
                quiet_config(pattern_params={"std": float(index + 1)})
            )
        assert (
            len(plan_module._pattern_memo)
            <= plan_module._PATTERN_MEMO_MAX_ENTRIES
        )


# ------------------------------------------------------ persistent workers


class TestPersistentWorkerPlanReuse:
    def test_worker_plans_once_per_distinct_config_across_chunks(self, quiet_config):
        """One persistent worker served 4 single-item chunks (2 distinct
        configs): its plan cache must report exactly 2 builds at the end."""
        config_a = quiet_config(matrix_size=32, seeds=2)
        config_b = quiet_config(matrix_size=48, seeds=2)
        items = [config_a, config_b, config_a, config_b]
        executor = ProcessExecutor(
            workers=1,
            chunksize=1,
            transfer="pickle",
            initializer=_process_worker_init,
            initargs=(chunk_budget_bytes(), 64),
        )
        try:
            probes = list(executor.map(_plan_builds_after_running, items))
        finally:
            executor.shutdown()
        pids = {pid for pid, _, _ in probes}
        assert len(pids) == 1  # one persistent worker served every chunk
        assert [builds for _, builds, _ in probes] == [1, 2, 2, 2]
        assert probes[-1][2] == 2  # two plans resident, not four

    def test_initializer_forwards_disable(self, fresh_default_plan_cache):
        """plan_entries < 1 is the parent's explicit plan_cache=None."""
        _process_worker_init(chunk_budget_bytes(), 0)
        assert get_default_plan_cache() is None

    def test_initializer_seeds_sized_cache(self, fresh_default_plan_cache):
        _process_worker_init(chunk_budget_bytes(), 32)
        cache = get_default_plan_cache()
        assert cache is not None and cache.max_entries == 32

    def test_run_configs_processes_with_plan_cache_disabled(self, quiet_config):
        """End to end: the processes backend with the plan tier disabled
        still returns bit-for-bit identical results."""
        configs = sweep_configs(
            quiet_config(pattern_family="sparsity", matrix_size=32, seeds=2),
            "sparsity",
            [0.0, 1.0],
        )
        reference = _as_dicts(
            run_configs(configs, workers=1, cache=None, activity_cache=None, plan_cache=None)
        )
        computed = run_configs(
            configs,
            workers=2,
            cache=None,
            activity_cache=None,
            plan_cache=None,
            backend="processes",
        )
        assert _as_dicts(computed) == reference
