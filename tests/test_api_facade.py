"""Tests for the stable public façade (repro.api) and top-level exports."""

from __future__ import annotations

import pytest

from repro import api


class TestExports:
    def test_every_declared_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_lazy_submodules_resolve_to_modules(self):
        import types

        import repro

        # ``repro.serve`` must stay the module — a same-named function at
        # the top level would shadow ``python -m repro.serve``.
        assert isinstance(repro.api, types.ModuleType)
        assert isinstance(repro.core, types.ModuleType)
        assert isinstance(repro.serve, types.ModuleType)
        assert callable(repro.serve.serve)
        for name in ("api", "core", "serve"):
            assert name in repro.__all__
            assert name in dir(repro)

    def test_unknown_top_level_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.no_such_symbol

    def test_facade_symbols_are_the_real_objects(self):
        from repro.core import estimate_experiment
        from repro.experiments.config import ExperimentConfig
        from repro.serve.server import serve
        from repro.serve.service import ServiceConfig

        assert api.ExperimentConfig is ExperimentConfig
        assert api.estimate_experiment is estimate_experiment
        assert api.serve is serve
        assert api.ServiceConfig is ServiceConfig


class TestKeywordOnlyContracts:
    def test_run_experiment_rejects_positional_caches(self, quiet_config):
        with pytest.raises(TypeError):
            api.run_experiment(quiet_config(), None)

    def test_run_configs_rejects_positional_workers(self, quiet_config):
        with pytest.raises(TypeError):
            api.run_configs([quiet_config()], 2)

    def test_run_sweep_rejects_positional_tuning(self, quiet_config):
        with pytest.raises(TypeError):
            api.run_sweep(quiet_config(), "matrix_size", [128, 160], "config")


class TestFacadeEquivalence:
    def test_run_experiment_matches_harness(self, quiet_config):
        from repro.experiments.harness import run_experiment as harness_run

        config = quiet_config()
        facade = api.run_experiment(
            config, cache=None, activity_cache=None, plan_cache=None
        )
        direct = harness_run(
            config, cache=None, activity_cache=None, plan_cache=None
        )
        assert facade.as_dict() == direct.as_dict()

    def test_run_configs_matches_sweep(self, quiet_config):
        from repro.experiments.sweep import run_configs as sweep_run

        configs = [quiet_config(), quiet_config(matrix_size=160)]
        facade = api.run_configs(
            configs, cache=None, activity_cache=None, plan_cache=None
        )
        direct = sweep_run(
            configs, cache=None, activity_cache=None, plan_cache=None
        )
        assert [r.as_dict() for r in facade] == [r.as_dict() for r in direct]

    def test_run_sweep_matches_sweep(self, quiet_config):
        from repro.experiments.sweep import run_sweep as sweep_run

        base = quiet_config()
        facade = api.run_sweep(
            base,
            "matrix_size",
            [128, 160],
            target="config",
            cache=None,
            activity_cache=None,
            plan_cache=None,
        )
        direct = sweep_run(
            base,
            "matrix_size",
            [128, 160],
            target="config",
            cache=None,
            activity_cache=None,
            plan_cache=None,
        )
        assert [r.as_dict() for r in facade.results] == [
            r.as_dict() for r in direct.results
        ]

    def test_default_caches_is_peek(self):
        from repro.cache.store import peek_default_caches

        assert api.default_caches() == peek_default_caches()


class TestConfigWireFormat:
    def test_from_dict_round_trips_describe_fields(self, quiet_config):
        from repro.experiments.config import ExperimentConfig

        config = quiet_config(label="wire")
        rebuilt = ExperimentConfig.from_dict(config.describe())
        for field_name in config.describe():
            assert getattr(rebuilt, field_name) == getattr(config, field_name), field_name

    def test_from_dict_nested_sub_configs(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig.from_dict(
            {
                "matrix_size": 96,
                "sampling": {"output_samples": 32},
                "telemetry": {"noise_std_watts": 0.0, "drift_watts": 0.0},
            }
        )
        assert config.matrix_size == 96
        assert config.sampling.output_samples == 32
        assert config.telemetry.noise_std_watts == 0.0

    def test_from_dict_rejects_unknown_fields(self):
        from repro.errors import ExperimentError
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ExperimentError) as excinfo:
            ExperimentConfig.from_dict({"matrix_sise": 96})
        assert "matrix_sise" in str(excinfo.value)

    def test_from_dict_rejects_bad_sub_config_fields(self):
        from repro.errors import ExperimentError
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ExperimentError):
            ExperimentConfig.from_dict({"sampling": {"output_sample": 32}})
        with pytest.raises(ExperimentError):
            ExperimentConfig.from_dict({"matrix_size": "not-a-number"})
