"""Tests for the exception hierarchy and subpackage export surfaces."""

from __future__ import annotations

import importlib

import pytest

from repro import errors


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.ConfigurationError,
        errors.DTypeError,
        errors.PatternError,
        errors.DeviceError,
        errors.KernelError,
        errors.ActivityError,
        errors.PowerModelError,
        errors.TelemetryError,
        errors.ExperimentError,
        errors.AnalysisError,
        errors.OptimizationError,
    ]

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_catching_base_catches_specific(self):
        with pytest.raises(errors.ReproError):
            raise errors.PatternError("nope")

    def test_errors_carry_messages(self):
        try:
            raise errors.DeviceError("unknown GPU 'foo'")
        except errors.ReproError as exc:
            assert "foo" in str(exc)


class TestSubpackageExports:
    """Every name listed in a subpackage's __all__ must actually resolve."""

    PACKAGES = [
        "repro",
        "repro.util",
        "repro.dtypes",
        "repro.patterns",
        "repro.gpu",
        "repro.kernels",
        "repro.activity",
        "repro.power",
        "repro.runtime",
        "repro.telemetry",
        "repro.experiments",
        "repro.analysis",
        "repro.optimize",
    ]

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_exports_resolve(self, package_name):
        module = importlib.import_module(package_name)
        assert hasattr(module, "__all__") and module.__all__
        for name in module.__all__:
            assert hasattr(module, name), f"{package_name}.{name} missing"

    def test_figures_registry_importable(self):
        figures = importlib.import_module("repro.experiments.figures")
        assert len(figures.FIGURES) == 8
