"""Unit tests for the repro.dtypes package."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtypes import PAPER_DTYPES, get_dtype, list_dtypes, register_dtype
from repro.dtypes.base import DTypeSpec, FloatFormat, NativeFloatSpec
from repro.dtypes.convert import (
    clip_to_range,
    encode_matrix,
    paper_distribution_scale,
    quantize_matrix,
)
from repro.errors import DTypeError


class TestFloatFormat:
    def test_fp32_constants(self):
        fmt = get_dtype("fp32").float_format
        assert fmt.total_bits == 32
        assert fmt.bias == 127
        assert fmt.max_finite == pytest.approx(3.4028235e38, rel=1e-6)
        assert fmt.min_normal == pytest.approx(1.1754944e-38, rel=1e-6)

    def test_fp16_constants(self):
        fmt = get_dtype("fp16").float_format
        assert fmt.total_bits == 16
        assert fmt.bias == 15
        assert fmt.max_finite == pytest.approx(65504.0)

    def test_bf16_constants(self):
        fmt = get_dtype("bf16").float_format
        assert fmt.total_bits == 16
        assert fmt.exponent_bits == 8
        assert fmt.mantissa_bits == 7

    def test_int8_format(self):
        fmt = get_dtype("int8").int_format
        assert fmt.min_value == -128
        assert fmt.max_value == 127


class TestRegistry:
    def test_paper_dtypes_registered(self):
        for name in PAPER_DTYPES:
            assert get_dtype(name).name == name

    def test_aliases(self):
        assert get_dtype("float32").name == "fp32"
        assert get_dtype("half").name == "fp16"
        assert get_dtype("FP16-T").name == "fp16_t"
        assert get_dtype("bfloat16").name == "bf16"

    def test_pass_through_spec(self):
        spec = get_dtype("fp32")
        assert get_dtype(spec) is spec

    def test_unknown_dtype_raises(self):
        with pytest.raises(DTypeError):
            get_dtype("fp12")

    def test_list_contains_all_known(self):
        names = list_dtypes()
        for expected in ("fp64", "fp32", "fp16", "fp16_t", "bf16", "int8", "int32"):
            assert expected in names

    def test_double_registration_rejected(self):
        with pytest.raises(DTypeError):
            register_dtype(get_dtype("fp32"))

    def test_equality_and_hash(self):
        assert get_dtype("fp16") == get_dtype("half")
        assert get_dtype("fp16") != get_dtype("fp16_t")
        assert hash(get_dtype("fp32")) == hash(get_dtype("float32"))


class TestEncodeDecodeRoundTrip:
    @pytest.mark.parametrize("name", ["fp64", "fp32", "fp16", "fp16_t", "bf16", "int8", "int32"])
    def test_roundtrip_idempotent(self, name, rng):
        spec = get_dtype(name)
        values = rng.normal(0, 50, size=(16, 16))
        quantized = spec.quantize(values)
        # Quantizing twice changes nothing.
        np.testing.assert_array_equal(spec.quantize(quantized), quantized)

    @pytest.mark.parametrize("name", ["fp32", "fp16", "fp16_t", "bf16"])
    def test_word_dtype_and_shape(self, name, rng):
        spec = get_dtype(name)
        values = rng.normal(size=(4, 5))
        words = spec.encode(values)
        assert words.shape == (4, 5)
        assert words.dtype == spec.word_dtype

    def test_fp32_bit_pattern_of_one(self):
        words = get_dtype("fp32").encode(np.array([1.0]))
        assert int(words[0]) == 0x3F800000

    def test_fp16_bit_pattern_of_one(self):
        words = get_dtype("fp16").encode(np.array([1.0]))
        assert int(words[0]) == 0x3C00

    def test_bf16_bit_pattern_of_one(self):
        words = get_dtype("bf16").encode(np.array([1.0]))
        assert int(words[0]) == 0x3F80

    def test_int8_saturation(self):
        spec = get_dtype("int8")
        out = spec.quantize(np.array([1000.0, -1000.0, 3.4]))
        assert out.tolist() == [127.0, -128.0, 3.0]

    def test_int8_rounding_to_nearest(self):
        spec = get_dtype("int8")
        assert spec.quantize(np.array([2.5, -2.5, 2.4]))[2] == 2.0

    def test_fp16_overflow_to_inf(self):
        spec = get_dtype("fp16")
        out = spec.quantize(np.array([1e6]))
        assert np.isinf(out[0])

    def test_bf16_preserves_large_dynamic_range(self):
        spec = get_dtype("bf16")
        out = spec.quantize(np.array([1e30]))
        assert np.isfinite(out[0]) and out[0] > 0

    def test_bf16_nan_stays_nan(self):
        spec = get_dtype("bf16")
        out = spec.quantize(np.array([np.nan]))
        assert np.isnan(out[0])

    def test_bf16_round_to_nearest_even(self):
        spec = get_dtype("bf16")
        # bf16 has a 7-bit mantissa: 1 + 2^-8 rounds down to 1.0, 1 + 3*2^-9 rounds up.
        assert spec.quantize(np.array([1.0 + 2.0**-8]))[0] == pytest.approx(1.0)
        assert spec.quantize(np.array([1.0 + 3 * 2.0**-9]))[0] > 1.0

    def test_decode_rejects_wrong_word_dtype(self):
        spec = get_dtype("fp16")
        with pytest.raises(DTypeError):
            spec.decode(np.zeros(4, dtype=np.uint32))


class TestFieldExtraction:
    def test_fp32_fields_of_minus_two(self):
        spec = get_dtype("fp32")
        words = spec.encode(np.array([-2.0]))
        assert int(spec.sign_field(words)[0]) == 1
        assert int(spec.exponent_field(words)[0]) == 128
        assert int(spec.mantissa_field(words)[0]) == 0

    def test_fp16_fields_of_half(self):
        spec = get_dtype("fp16")
        words = spec.encode(np.array([0.5]))
        assert int(spec.sign_field(words)[0]) == 0
        assert int(spec.exponent_field(words)[0]) == 14

    def test_field_extraction_rejected_for_integers(self):
        spec = get_dtype("int8")
        with pytest.raises(DTypeError):
            spec.exponent_field(spec.encode(np.array([1.0])))

    def test_tensor_core_flags(self):
        assert get_dtype("fp16_t").tensor_core is True
        assert get_dtype("fp16").tensor_core is False
        assert get_dtype("fp16_t").bits == get_dtype("fp16").bits


class TestRepresentableRange:
    def test_float_range_symmetric(self):
        low, high = get_dtype("fp16").representable_range
        assert low == -high

    def test_int_range(self):
        assert get_dtype("int8").representable_range == (-128.0, 127.0)

    def test_base_spec_without_format_raises(self):
        class Bare(DTypeSpec):
            name = "bare"

            def encode(self, values):  # pragma: no cover - not used
                return values

            def decode(self, words):  # pragma: no cover - not used
                return words

        with pytest.raises(DTypeError):
            _ = Bare().representable_range

    def test_native_spec_width_mismatch_rejected(self):
        with pytest.raises(DTypeError):
            NativeFloatSpec(
                name="bad",
                value_dtype=np.dtype(np.float32),
                word_dtype=np.dtype(np.uint16),
                float_format=FloatFormat(exponent_bits=8, mantissa_bits=23),
            )


class TestConvertHelpers:
    def test_paper_distribution_scale(self):
        assert paper_distribution_scale("fp16") == pytest.approx(210.0)
        assert paper_distribution_scale("int8") == pytest.approx(25.0)

    def test_clip_to_range_int8(self):
        clipped = clip_to_range(np.array([500.0, -500.0, 3.0]), "int8")
        assert clipped.tolist() == [127.0, -128.0, 3.0]

    def test_clip_to_range_margin(self):
        clipped = clip_to_range(np.array([127.0]), "int8", margin=0.1)
        assert clipped[0] < 127.0

    def test_quantize_matrix_matches_spec(self, rng):
        values = rng.normal(size=(8, 8))
        np.testing.assert_array_equal(
            quantize_matrix(values, "fp16"), get_dtype("fp16").quantize(values)
        )

    def test_encode_matrix_dtype(self, rng):
        words = encode_matrix(rng.normal(size=(4, 4)), "int8")
        assert words.dtype == np.uint8
