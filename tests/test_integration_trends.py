"""Integration tests: the paper's takeaways reproduced end-to-end (small scale).

These tests run the full pipeline (pattern → kernel plan → activity → power
model → simulated telemetry → aggregation) with noise disabled, and assert
the *direction* of every takeaway the paper reports.  The benchmark harness
repeats the same experiments at paper scale.
"""

from __future__ import annotations

import pytest

from repro.analysis.takeaways import (
    check_t1_std_insensitive,
    check_t2_mean_reduces_power,
    check_t3_small_set_reduces_power,
    check_t4_similar_bits_use_less,
    check_t5_lsb_randomization_increases,
    check_t6_msb_randomization_increases,
    check_t7_fp16t_most_power_hungry,
    check_t8_sorting_decreases,
    check_t9_aligned_sorting_better,
    check_t10_column_sorting_decreases,
    check_t11_intra_row_lesser_effect,
    check_t12_sparsity_decreases,
    check_t13_sorted_sparsity_peak,
    check_t14_zero_lsb_reduces,
    check_t15_zero_msb_reduces,
    evaluate_takeaways,
    passed_fraction,
)
from repro.experiments.harness import run_experiment
from repro.experiments.sweep import run_sweep

SIZE = 192  # big enough for clear trends, small enough to stay fast


@pytest.fixture(scope="module")
def make_config():
    from repro.activity.sampler import SamplingConfig
    from repro.experiments.config import ExperimentConfig
    from repro.telemetry.sampler import TelemetryConfig

    def factory(**overrides):
        base = ExperimentConfig(
            dtype="fp16_t",
            gpu="a100",
            matrix_size=SIZE,
            seeds=2,
            telemetry=TelemetryConfig(noise_std_watts=0.0, drift_watts=0.0),
            sampling=SamplingConfig(output_samples=96),
            include_process_variation=False,
        )
        return base.with_overrides(**overrides)

    return factory


@pytest.fixture(scope="module")
def sweeps(make_config):
    """Run every sweep needed by the takeaway checks once (module scope)."""

    def sweep(family, parameter, values, **config_overrides):
        extra_params = config_overrides.pop("pattern_params", {})
        config = make_config(pattern_family=family, pattern_params=extra_params, **config_overrides)
        return run_sweep(config, parameter, values)

    return {
        "std": sweep("gaussian", "std", [0.25, 1.0, 210.0, 4096.0], pattern_params={"mean": 0.0}),
        "mean": sweep("gaussian", "mean", [0.0, 256.0, 4096.0, 16384.0], pattern_params={"std": 1.0}),
        "value_set": sweep("value_set", "set_size", [1, 16, 256]),
        "bit_flip": sweep("bit_flip", "probability", [0.0, 0.1, 0.3, 0.5]),
        "lsb": sweep("randomize_lsb", "fraction", [0.0, 0.5, 1.0]),
        "msb": sweep("randomize_msb", "fraction", [0.0, 0.5, 1.0]),
        "sorted_rows": sweep("sorted_rows", "fraction", [0.0, 0.5, 1.0], transpose_b=False),
        "sorted_aligned": sweep("sorted_rows", "fraction", [0.0, 0.5, 1.0], transpose_b=True),
        "sorted_columns": sweep("sorted_columns", "fraction", [0.0, 0.5, 1.0]),
        "sorted_within_rows": sweep("sorted_within_rows", "fraction", [0.0, 0.5, 1.0]),
        "sparsity": sweep("sparsity", "sparsity", [0.0, 0.25, 0.5, 0.75, 1.0]),
        "sorted_sparsity": sweep(
            "sorted_sparsity", "sparsity", [0.0, 0.15, 0.3, 0.45, 0.7, 1.0]
        ),
        "zero_lsb": sweep("zero_lsb", "fraction", [0.0, 0.5, 1.0]),
        "zero_msb": sweep("zero_msb", "fraction", [0.0, 0.5, 1.0]),
    }


@pytest.fixture(scope="module")
def power_by_dtype(make_config):
    powers = {}
    for dtype in ("fp32", "fp16", "fp16_t", "int8"):
        result = run_experiment(make_config(dtype=dtype, matrix_size=256, seeds=1))
        powers[dtype] = result.mean_power_watts
    return powers


class TestValueDistributionTakeaways:
    def test_t1_std_does_not_matter(self, sweeps):
        assert check_t1_std_insensitive(sweeps["std"]).passed

    def test_t2_larger_mean_less_power(self, sweeps):
        assert check_t2_mean_reduces_power(sweeps["mean"]).passed

    def test_t3_small_value_set_less_power(self, sweeps):
        assert check_t3_small_set_reduces_power(sweeps["value_set"]).passed


class TestBitSimilarityTakeaways:
    def test_t4_similar_bits_less_power(self, sweeps):
        assert check_t4_similar_bits_use_less(sweeps["bit_flip"]).passed

    def test_t5_lsb_randomization_more_power(self, sweeps):
        assert check_t5_lsb_randomization_increases(sweeps["lsb"]).passed

    def test_t6_msb_randomization_more_power(self, sweeps):
        assert check_t6_msb_randomization_increases(sweeps["msb"]).passed

    def test_t7_fp16t_most_power_hungry(self, power_by_dtype):
        assert check_t7_fp16t_most_power_hungry(power_by_dtype).passed


class TestPlacementTakeaways:
    def test_t8_sorting_reduces_power(self, sweeps):
        assert check_t8_sorting_decreases(sweeps["sorted_rows"]).passed

    def test_t9_aligned_sorting_reduces_more(self, sweeps):
        assert check_t9_aligned_sorting_better(
            sweeps["sorted_rows"], sweeps["sorted_aligned"]
        ).passed

    def test_t10_column_sorting_reduces_power(self, sweeps):
        assert check_t10_column_sorting_decreases(sweeps["sorted_columns"]).passed

    def test_t11_intra_row_sorting_lesser_effect(self, sweeps):
        assert check_t11_intra_row_lesser_effect(
            sweeps["sorted_rows"], sweeps["sorted_within_rows"]
        ).passed


class TestSparsityTakeaways:
    def test_t12_sparsity_reduces_power(self, sweeps):
        assert check_t12_sparsity_decreases(sweeps["sparsity"]).passed

    def test_t13_sorted_sparsity_interior_peak(self, sweeps):
        assert check_t13_sorted_sparsity_peak(sweeps["sorted_sparsity"]).passed

    def test_t14_zero_lsb_reduces_power(self, sweeps):
        assert check_t14_zero_lsb_reduces(sweeps["zero_lsb"]).passed

    def test_t15_zero_msb_reduces_power(self, sweeps):
        assert check_t15_zero_msb_reduces(sweeps["zero_msb"]).passed


class TestAggregateTakeaways:
    def test_all_takeaways_evaluated(self, sweeps, power_by_dtype):
        checks = evaluate_takeaways(sweeps, power_by_dtype)
        assert len(checks) == 15

    def test_all_takeaways_reproduced(self, sweeps, power_by_dtype):
        checks = evaluate_takeaways(sweeps, power_by_dtype)
        failing = [c.takeaway for c in checks if not c.passed]
        assert passed_fraction(checks) == 1.0, f"takeaways not reproduced: {failing}"

    def test_power_swing_is_substantial(self, sweeps):
        # The paper reports input-induced swings of up to ~38%.  At this small
        # matrix size the data-dependent budget is scaled down by occupancy,
        # but the swing must still be clearly measurable.
        swing = sweeps["bit_flip"].power_range_fraction()
        assert swing > 0.03


class TestRuntimeInputIndependence:
    def test_runtime_consistent_across_patterns(self, make_config):
        # The paper reports microsecond-consistent runtimes across input
        # patterns for a fixed datatype; the model makes them identical.
        runtimes = []
        for family, params in (
            ("gaussian", {}),
            ("sparsity", {"sparsity": 0.9}),
            ("sorted_rows", {"fraction": 1.0}),
        ):
            result = run_experiment(make_config(pattern_family=family, pattern_params=params))
            runtimes.append(result.mean_iteration_time_s)
        assert max(runtimes) - min(runtimes) < 1e-9
