"""Tests of the top-level public API (what README and examples rely on)."""

from __future__ import annotations

import pytest

import repro


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_paper_dtypes_constant(self):
        assert repro.PAPER_DTYPES == ("fp32", "fp16", "fp16_t", "int8")

    def test_list_helpers(self):
        assert "a100" in repro.list_gpus()
        assert "fp16_t" in repro.list_dtypes()
        assert "sorted_rows" in repro.list_patterns()


class TestMeasureGemmPower:
    def test_default_call(self, quiet_telemetry):
        result = repro.measure_gemm_power(
            matrix_size=96, seeds=1, telemetry=quiet_telemetry, include_process_variation=False
        )
        assert result.mean_power_watts > repro.get_gpu_spec("a100").idle_watts

    def test_pattern_parameters_forwarded(self, quiet_telemetry):
        dense = repro.measure_gemm_power(
            matrix_size=96, seeds=1, telemetry=quiet_telemetry, include_process_variation=False
        )
        sparse = repro.measure_gemm_power(
            pattern="sparsity",
            pattern_params={"sparsity": 1.0},
            matrix_size=96,
            seeds=1,
            telemetry=quiet_telemetry,
            include_process_variation=False,
        )
        assert sparse.mean_power_watts < dense.mean_power_watts

    def test_gpu_and_dtype_selection(self, quiet_telemetry):
        result = repro.measure_gemm_power(
            gpu="h100",
            dtype="fp32",
            matrix_size=96,
            seeds=1,
            telemetry=quiet_telemetry,
            include_process_variation=False,
        )
        assert result.config["device"]["name"] == "h100"
        assert result.config["dtype"] == "fp32"

    def test_invalid_pattern_raises_repro_error(self):
        with pytest.raises(repro.ReproError):
            repro.measure_gemm_power(pattern="nonexistent", matrix_size=96)

    def test_run_sweep_public_entry(self, quiet_telemetry):
        config = repro.ExperimentConfig(
            pattern_family="sparsity",
            matrix_size=96,
            seeds=1,
            telemetry=quiet_telemetry,
            include_process_variation=False,
        )
        sweep = repro.run_sweep(config, "sparsity", [0.0, 1.0])
        assert sweep.powers()[1] < sweep.powers()[0]

    def test_reference_gemm_exposed(self, rng):
        problem = repro.GemmProblem(n=8, m=8, k=8, dtype="fp32", transpose_b=False)
        operands = repro.GemmOperands(
            problem=problem, a=rng.normal(size=(8, 8)), b_stored=rng.normal(size=(8, 8))
        )
        result = repro.reference_gemm(operands)
        assert result.shape == (8, 8)
