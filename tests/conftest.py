"""Shared fixtures for the test suite.

Tests run against small matrices and noise-free telemetry so that every
assertion about trend *direction* is deterministic and the whole suite stays
fast.  The benchmark harness, not the tests, exercises paper-scale sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity.sampler import SamplingConfig
from repro.experiments.config import ExperimentConfig
from repro.telemetry.sampler import TelemetryConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic NumPy generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def quiet_telemetry() -> TelemetryConfig:
    """Telemetry config with sensor noise and drift disabled."""
    return TelemetryConfig(noise_std_watts=0.0, drift_watts=0.0)


@pytest.fixture
def small_sampling() -> SamplingConfig:
    """Small sampling budget: enough signal for trend checks, fast."""
    return SamplingConfig(output_samples=64)


@pytest.fixture
def quiet_config(quiet_telemetry: TelemetryConfig, small_sampling: SamplingConfig):
    """Factory for small, deterministic experiment configurations."""

    def make(**overrides) -> ExperimentConfig:
        base = ExperimentConfig(
            pattern_family="gaussian",
            dtype="fp16_t",
            gpu="a100",
            matrix_size=128,
            seeds=1,
            telemetry=quiet_telemetry,
            sampling=small_sampling,
            include_process_variation=False,
        )
        return base.with_overrides(**overrides) if overrides else base

    return make


@pytest.fixture
def gaussian_matrices(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A pair of small Gaussian matrices (paper's default input scale)."""
    a = rng.normal(0.0, 210.0, size=(96, 96))
    b = rng.normal(0.0, 210.0, size=(96, 96))
    return a, b
