"""Unit tests for the repro.analysis package."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.alignment import matrix_bit_alignment, pairwise_alignment_profile
from repro.analysis.correlation import correlate_power_with_bit_metrics, scatter_points
from repro.analysis.hamming import hamming_profile, matrix_hamming_fraction
from repro.analysis.reporting import (
    render_experiment_table,
    render_figure_markdown,
    render_takeaway_report,
)
from repro.analysis.takeaways import (
    TAKEAWAY_STATEMENTS,
    TakeawayCheck,
    check_t7_fp16t_most_power_hungry,
    evaluate_takeaways,
    passed_fraction,
)
from repro.errors import AnalysisError
from repro.experiments.harness import run_experiment
from repro.experiments.results import FigureResult
from repro.experiments.sweep import run_sweep


class TestAlignment:
    def test_identical_matrices_full_alignment(self, rng):
        values = rng.normal(0, 210, size=(16, 16))
        assert matrix_bit_alignment(values, values, "fp16") == pytest.approx(1.0)

    def test_alignment_shape_mismatch(self, rng):
        with pytest.raises(AnalysisError):
            matrix_bit_alignment(rng.normal(size=(4, 4)), rng.normal(size=(4, 5)), "fp16")

    def test_random_pair_alignment_midrange(self, gaussian_matrices):
        a, b = gaussian_matrices
        alignment = matrix_bit_alignment(a, b, "fp16")
        assert 0.3 < alignment < 0.8

    def test_profile_fields(self, gaussian_matrices):
        profile = pairwise_alignment_profile(*gaussian_matrices, dtype="fp16")
        assert set(profile) == {"mean", "std", "min", "max", "p10", "p90"}
        assert profile["min"] <= profile["mean"] <= profile["max"]

    def test_profile_shape_mismatch(self, rng):
        with pytest.raises(AnalysisError):
            pairwise_alignment_profile(rng.normal(size=(4, 4)), rng.normal(size=(5, 4)), "fp16")


class TestHamming:
    def test_zero_matrix(self):
        assert matrix_hamming_fraction(np.zeros((8, 8)), "fp16") == 0.0

    def test_random_matrix_midrange(self, gaussian_matrices):
        fraction = matrix_hamming_fraction(gaussian_matrices[0], "fp16")
        assert 0.3 < fraction < 0.7

    def test_profile_consistency(self, gaussian_matrices):
        profile = hamming_profile(gaussian_matrices[0], "fp16")
        assert profile["width_bits"] == 16
        assert profile["mean_fraction"] == pytest.approx(profile["mean_bits"] / 16)
        assert profile["min_bits"] <= profile["mean_bits"] <= profile["max_bits"]


class TestCorrelation:
    def _results(self, quiet_config):
        configs = [
            quiet_config(pattern_family="gaussian", label="gaussian"),
            quiet_config(
                pattern_family="sparsity", pattern_params={"sparsity": 0.8}, label="sparse"
            ),
            quiet_config(pattern_family="constant_random", label="constant"),
        ]
        return [run_experiment(c) for c in configs]

    def test_scatter_points_fields(self, quiet_config):
        points = scatter_points(self._results(quiet_config))
        assert len(points) == 3
        assert {"dtype", "power_watts", "bit_alignment", "hamming_fraction"}.issubset(points[0])

    def test_correlations_per_dtype(self, quiet_config):
        summaries = correlate_power_with_bit_metrics(self._results(quiet_config))
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary.dtype == "fp16_t"
        assert summary.num_points == 3
        assert -1.0 <= summary.hamming_pearson <= 1.0
        assert set(summary.as_dict()) >= {"alignment_pearson", "hamming_spearman"}

    def test_empty_results_rejected(self):
        with pytest.raises(AnalysisError):
            correlate_power_with_bit_metrics([])


class TestTakeaways:
    def _sweep(self, quiet_config, family, parameter, values, **extra):
        return run_sweep(quiet_config(pattern_family=family, **extra), parameter, values)

    def test_statement_catalogue_complete(self):
        assert set(TAKEAWAY_STATEMENTS) == {f"T{i}" for i in range(1, 16)}

    def test_t7_check(self):
        check = check_t7_fp16t_most_power_hungry({"fp16_t": 280.0, "fp32": 240.0, "int8": 200.0})
        assert check.passed
        check = check_t7_fp16t_most_power_hungry({"fp16_t": 200.0, "fp32": 240.0})
        assert not check.passed
        with pytest.raises(AnalysisError):
            check_t7_fp16t_most_power_hungry({"fp32": 240.0})

    def test_evaluate_subset_of_sweeps(self, quiet_config):
        sweeps = {
            "sparsity": self._sweep(quiet_config, "sparsity", "sparsity", [0.0, 0.5, 1.0]),
            "zero_lsb": self._sweep(quiet_config, "zero_lsb", "fraction", [0.0, 0.5, 1.0]),
        }
        checks = evaluate_takeaways(sweeps)
        ids = {c.takeaway for c in checks}
        assert ids == {"T12", "T14"}
        assert all(isinstance(c, TakeawayCheck) for c in checks)
        assert all(c.passed for c in checks)

    def test_passed_fraction(self):
        checks = [
            TakeawayCheck("T1", "s", True, "d"),
            TakeawayCheck("T2", "s", False, "d"),
        ]
        assert passed_fraction(checks) == pytest.approx(0.5)
        with pytest.raises(AnalysisError):
            passed_fraction([])

    def test_check_as_dict(self):
        check = TakeawayCheck("T1", "statement", True, "detail")
        assert check.as_dict()["takeaway"] == "T1"


class TestReporting:
    def test_experiment_table(self, quiet_config):
        results = [run_experiment(quiet_config(label="baseline"))]
        table = render_experiment_table(results, title="results")
        assert "results" in table and "baseline" in table and "power_W" in table

    def test_takeaway_report(self):
        checks = [
            TakeawayCheck("T1", "statement one", True, "ok"),
            TakeawayCheck("T2", "statement two", False, "nope"),
        ]
        report = render_takeaway_report(checks)
        assert "PASS" in report and "FAIL" in report and "1/2" in report

    def test_figure_markdown(self, quiet_config):
        sweep = run_sweep(quiet_config(pattern_family="sparsity"), "sparsity", [0.0, 1.0])
        figure = FigureResult(name="fig6", description="sparsity effects")
        figure.add_panel("a_sparsity/fp16_t", sweep)
        figure.notes.append("test note")
        markdown = render_figure_markdown(
            figure, paper_expectation="power decreases", measured_summary="power decreased"
        )
        assert "### fig6" in markdown
        assert "**Paper:** power decreases" in markdown
        assert "| sparsity |" in markdown
        assert "- test note" in markdown
