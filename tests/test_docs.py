"""Documentation consistency tests (mirror of CI's docs job).

Runs ``scripts/check_docs.py`` against the working tree so broken Markdown
links and environment-variable drift fail the tier-1 suite locally, not
just the CI docs job — and unit-tests the checker's own failure modes,
which the happy path alone would leave unverified.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "scripts" / "check_docs.py"


class TestRepositoryDocs:
    def test_checker_passes_on_working_tree(self):
        proc = subprocess.run(
            [sys.executable, str(CHECKER)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, f"docs check failed:\n{proc.stderr}"
        assert "docs OK" in proc.stdout

    def test_docs_tree_is_complete(self):
        """The satellite pages ISSUE/README promise must all exist."""
        for page in (
            "architecture.md",
            "cache.md",
            "activity.md",
            "parallel.md",
            "configuration.md",
        ):
            assert (REPO_ROOT / "docs" / page).is_file(), f"missing docs/{page}"

    def test_configuration_documents_plan_cache_knob(self):
        text = (REPO_ROOT / "docs" / "configuration.md").read_text()
        assert "REPRO_PLAN_CACHE_MAX_ENTRIES" in text


class TestCheckerCatchesProblems:
    def _run(self, root: Path):
        return subprocess.run(
            [sys.executable, str(CHECKER), "--root", str(root)],
            capture_output=True,
            text=True,
        )

    def _seed_minimal_repo(self, root: Path) -> None:
        (root / "docs").mkdir()
        (root / "src").mkdir()
        (root / "benchmarks").mkdir()
        (root / "README.md").write_text("[docs](docs/configuration.md)\n")
        (root / "docs" / "configuration.md").write_text("`REPRO_DEMO_KNOB`\n")
        (root / "src" / "mod.py").write_text('KNOB = "REPRO_DEMO_KNOB"\n')

    def test_minimal_repo_passes(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        proc = self._run(tmp_path)
        assert proc.returncode == 0, proc.stderr

    def test_broken_link_fails(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "docs" / "extra.md").write_text("[gone](missing.md)\n")
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "broken link" in proc.stderr

    def test_undocumented_env_var_fails(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "src" / "extra.py").write_text('X = "REPRO_SECRET_KNOB"\n')
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "undocumented environment variable: REPRO_SECRET_KNOB" in proc.stderr

    def test_digit_bearing_env_var_not_truncated(self, tmp_path):
        """Names like REPRO_TIER2_CACHE must be matched whole, not clipped
        at the first digit (which would blind the sync check to them)."""
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "src" / "extra.py").write_text('X = "REPRO_TIER2_CACHE"\n')
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "undocumented environment variable: REPRO_TIER2_CACHE" in proc.stderr

    def test_stale_documented_env_var_fails(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "docs" / "configuration.md").write_text(
            "`REPRO_DEMO_KNOB` `REPRO_REMOVED_KNOB`\n"
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "stale documentation: REPRO_REMOVED_KNOB" in proc.stderr

    def test_external_links_and_fragments_ignored(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "docs" / "extra.md").write_text(
            "[web](https://example.com/x) [anchor](#section) "
            "[frag](configuration.md#somewhere)\n"
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 0, proc.stderr
