"""Documentation consistency tests (mirror of CI's docs job).

Runs ``scripts/check_docs.py`` against the working tree so broken Markdown
links and environment-variable drift fail the tier-1 suite locally, not
just the CI docs job — and unit-tests the checker's own failure modes,
which the happy path alone would leave unverified.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "scripts" / "check_docs.py"


class TestRepositoryDocs:
    def test_checker_passes_on_working_tree(self):
        proc = subprocess.run(
            [sys.executable, str(CHECKER)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, f"docs check failed:\n{proc.stderr}"
        assert "docs OK" in proc.stdout

    def test_docs_tree_is_complete(self):
        """The satellite pages ISSUE/README promise must all exist."""
        for page in (
            "architecture.md",
            "cache.md",
            "activity.md",
            "parallel.md",
            "configuration.md",
        ):
            assert (REPO_ROOT / "docs" / page).is_file(), f"missing docs/{page}"

    def test_configuration_documents_plan_cache_knob(self):
        text = (REPO_ROOT / "docs" / "configuration.md").read_text()
        assert "REPRO_PLAN_CACHE_MAX_ENTRIES" in text


def _run_checker(root: Path):
    return subprocess.run(
        [sys.executable, str(CHECKER), "--root", str(root)],
        capture_output=True,
        text=True,
    )


def _seed_minimal_repo(root: Path) -> None:
    (root / "docs").mkdir()
    (root / "src").mkdir()
    (root / "benchmarks").mkdir()
    (root / "README.md").write_text("[docs](docs/configuration.md)\n")
    (root / "docs" / "configuration.md").write_text("`REPRO_DEMO_KNOB`\n")
    (root / "src" / "mod.py").write_text('KNOB = "REPRO_DEMO_KNOB"\n')


class TestCheckerCatchesProblems:
    def _run(self, root: Path):
        return _run_checker(root)

    def _seed_minimal_repo(self, root: Path) -> None:
        _seed_minimal_repo(root)

    def test_minimal_repo_passes(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        proc = self._run(tmp_path)
        assert proc.returncode == 0, proc.stderr

    def test_broken_link_fails(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "docs" / "extra.md").write_text("[gone](missing.md)\n")
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "broken link" in proc.stderr

    def test_undocumented_env_var_fails(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "src" / "extra.py").write_text('X = "REPRO_SECRET_KNOB"\n')
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "undocumented environment variable: REPRO_SECRET_KNOB" in proc.stderr

    def test_digit_bearing_env_var_not_truncated(self, tmp_path):
        """Names like REPRO_TIER2_CACHE must be matched whole, not clipped
        at the first digit (which would blind the sync check to them)."""
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "src" / "extra.py").write_text('X = "REPRO_TIER2_CACHE"\n')
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "undocumented environment variable: REPRO_TIER2_CACHE" in proc.stderr

    def test_stale_documented_env_var_fails(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "docs" / "configuration.md").write_text(
            "`REPRO_DEMO_KNOB` `REPRO_REMOVED_KNOB`\n"
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "stale documentation: REPRO_REMOVED_KNOB" in proc.stderr

    def test_external_links_and_fragments_ignored(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "docs" / "extra.md").write_text(
            "[web](https://example.com/x) [anchor](#section) "
            "[frag](configuration.md#somewhere)\n"
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 0, proc.stderr

    def test_wildcard_family_mention_is_not_a_name(self, tmp_path):
        """Prose like ``REPRO_SERVE_*`` ("the whole knob family") must not
        half-match as an env-var name and trip the sync check."""
        self._seed_minimal_repo(tmp_path)
        (tmp_path / "src" / "extra.py").write_text(
            '"""The REPRO_DEMO_* family of knobs."""\n'
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 0, proc.stderr


class TestCheckerDefaultsSync:
    """Failure modes of the default-value sync check (check #3)."""

    def _run(self, root: Path):
        return _run_checker(root)

    def _seed_minimal_repo(self, root: Path) -> None:
        _seed_minimal_repo(root)

    def _write_table_row(self, root: Path, default_cell: str) -> None:
        (root / "docs" / "configuration.md").write_text(
            "| Variable | Default | Meaning |\n"
            "|---|---|---|\n"
            f"| `REPRO_DEMO_KNOB` | {default_cell} | demo |\n"
        )

    def test_matching_string_literal_passes(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        self._write_table_row(tmp_path, "`quick`")
        (tmp_path / "src" / "mod.py").write_text(
            'X = environ.get("REPRO_DEMO_KNOB", "quick")\n'
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 0, proc.stderr

    def test_mismatched_literal_fails(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        self._write_table_row(tmp_path, "`slow`")
        (tmp_path / "src" / "mod.py").write_text(
            'X = environ.get("REPRO_DEMO_KNOB", "quick")\n'
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "default mismatch for REPRO_DEMO_KNOB" in proc.stderr
        assert "`quick`" in proc.stderr and "`slow`" in proc.stderr

    def test_integer_default_compared(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        self._write_table_row(tmp_path, "`64`")
        (tmp_path / "src" / "mod.py").write_text(
            'X = _env_int("REPRO_DEMO_KNOB", 64)\n'
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 0, proc.stderr

    def test_constant_fallback_resolved_in_same_file(self, tmp_path):
        """A read site falling back to an UPPER_CASE constant is compared
        through the constant's literal assignment."""
        self._seed_minimal_repo(tmp_path)
        self._write_table_row(tmp_path, "`8035`")
        (tmp_path / "src" / "mod.py").write_text(
            "DEFAULT_PORT = 8035\n"
            'X = environ.get("REPRO_DEMO_KNOB", DEFAULT_PORT)\n'
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 0, proc.stderr

    def test_constant_fallback_mismatch_fails(self, tmp_path):
        self._seed_minimal_repo(tmp_path)
        self._write_table_row(tmp_path, "`9000`")
        (tmp_path / "src" / "mod.py").write_text(
            "DEFAULT_PORT = 8035\n"
            'X = environ.get("REPRO_DEMO_KNOB", DEFAULT_PORT)\n'
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "default mismatch for REPRO_DEMO_KNOB" in proc.stderr

    def test_prose_default_cell_fails_when_code_has_literal(self, tmp_path):
        """A literal fallback in code with a prose Default cell is drift:
        the table must carry the mechanical value."""
        self._seed_minimal_repo(tmp_path)
        self._write_table_row(tmp_path, "the quick profile")
        (tmp_path / "src" / "mod.py").write_text(
            'X = environ.get("REPRO_DEMO_KNOB", "quick")\n'
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "default mismatch for REPRO_DEMO_KNOB" in proc.stderr

    def test_empty_string_sentinel_exempt(self, tmp_path):
        """``environ.get("REPRO_X", "")`` means "unset", not a default —
        any prose cell is fine."""
        self._seed_minimal_repo(tmp_path)
        self._write_table_row(tmp_path, "unset")
        (tmp_path / "src" / "mod.py").write_text(
            'X = environ.get("REPRO_DEMO_KNOB", "")\n'
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 0, proc.stderr

    def test_inconsistent_code_defaults_fail(self, tmp_path):
        """Two read sites disagreeing on the fallback is a bug even before
        documentation enters the picture."""
        self._seed_minimal_repo(tmp_path)
        self._write_table_row(tmp_path, "`quick`")
        (tmp_path / "src" / "mod.py").write_text(
            'X = environ.get("REPRO_DEMO_KNOB", "quick")\n'
        )
        (tmp_path / "src" / "other.py").write_text(
            'Y = environ.get("REPRO_DEMO_KNOB", "slow")\n'
        )
        proc = self._run(tmp_path)
        assert proc.returncode == 1
        assert "inconsistent defaults in code for REPRO_DEMO_KNOB" in proc.stderr
