"""Unit tests for the repro.power package and the runtime model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity.engine import activity_from_matrices
from repro.errors import PowerModelError
from repro.gpu.device import Device
from repro.kernels.gemm import GemmProblem
from repro.kernels.launch import plan_launch
from repro.power.calibration import DEFAULT_DTYPE_PROFILES, DTypePowerProfile, PowerCalibration
from repro.power.components import ComponentWeights, PowerComponents
from repro.power.energy import EnergyEstimate, energy_joules
from repro.power.model import MAX_ACTIVITY_FACTOR, PowerModel
from repro.runtime.model import RuntimeModel
from repro.runtime.roofline import compute_bound_time_s, memory_bound_time_s, roofline_time_s


@pytest.fixture
def a100() -> Device:
    return Device.create("a100")


@pytest.fixture
def gaussian_activity(gaussian_matrices):
    return activity_from_matrices(*gaussian_matrices, dtype="fp16_t")


@pytest.fixture
def zero_activity():
    return activity_from_matrices(np.zeros((64, 64)), np.zeros((64, 64)), dtype="fp16_t")


class TestComponentWeights:
    def test_normalized_sums_to_one(self):
        normalized = ComponentWeights().normalized()
        assert sum(normalized.values()) == pytest.approx(1.0)

    def test_without_component(self):
        weights = ComponentWeights().without("multiplier")
        assert weights.multiplier == 0.0
        assert weights.operand > 0

    def test_without_unknown_component(self):
        with pytest.raises(PowerModelError):
            ComponentWeights().without("alu")

    def test_negative_weight_rejected(self):
        with pytest.raises(PowerModelError):
            ComponentWeights(operand=-0.1)

    def test_all_zero_rejected(self):
        with pytest.raises(PowerModelError):
            ComponentWeights(operand=0, multiplier=0, datapath=0, memory=0)


class TestPowerComponents:
    def test_totals(self):
        components = PowerComponents(idle_watts=50, base_active_watts=100, data_dependent_watts=80)
        assert components.max_active_watts == 180
        assert components.max_total_watts == 230

    def test_negative_rejected(self):
        with pytest.raises(PowerModelError):
            PowerComponents(idle_watts=-1, base_active_watts=1, data_dependent_watts=1)


class TestCalibration:
    def test_fp16t_highest_headroom(self):
        profiles = DEFAULT_DTYPE_PROFILES
        assert profiles["fp16_t"].headroom_fraction == max(
            p.headroom_fraction for p in profiles.values()
        )

    def test_components_respect_tdp(self, a100):
        calibration = PowerCalibration()
        for dtype in ("fp32", "fp16", "fp16_t", "int8"):
            components = calibration.components(a100, dtype)
            assert components.max_total_watts <= a100.tdp_watts + 1e-9

    def test_unknown_dtype_profile(self, a100):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            PowerCalibration().components(a100, "fp8")

    def test_profile_override(self, a100):
        calibration = PowerCalibration(
            profiles={"fp32": DTypePowerProfile(headroom_fraction=0.5, data_dependent_fraction=0.5)}
        )
        components = calibration.components(a100, "fp32")
        assert components.data_dependent_watts == pytest.approx(components.base_active_watts)

    def test_invalid_profile(self):
        with pytest.raises(PowerModelError):
            DTypePowerProfile(headroom_fraction=0.0)
        with pytest.raises(PowerModelError):
            DTypePowerProfile(headroom_fraction=0.5, data_dependent_fraction=1.5)

    def test_datatype_power_ranking(self, a100):
        calibration = PowerCalibration()
        budgets = {
            dtype: calibration.components(a100, dtype).max_active_watts
            for dtype in ("fp32", "fp16", "fp16_t", "int8")
        }
        assert budgets["fp16_t"] > budgets["fp32"] > budgets["fp16"] > budgets["int8"]


class TestPowerModel:
    def test_estimate_between_idle_and_tdp(self, a100, gaussian_activity):
        launch = plan_launch(GemmProblem.square(2048, dtype="fp16_t"), a100)
        estimate = PowerModel(a100).estimate(launch, gaussian_activity, include_process_variation=False)
        assert a100.idle_watts < estimate.watts <= a100.tdp_watts + 1e-6

    def test_higher_activity_more_power(self, a100, gaussian_activity, zero_activity):
        launch = plan_launch(GemmProblem.square(512, dtype="fp16_t"), a100)
        model = PowerModel(a100)
        high = model.estimate(launch, gaussian_activity, include_process_variation=False)
        low = model.estimate(launch, zero_activity, include_process_variation=False)
        assert high.watts > low.watts
        assert high.activity_factor > low.activity_factor

    def test_activity_factor_clipped(self, a100, gaussian_activity):
        factor = PowerModel(a100).activity_factor(gaussian_activity)
        assert 0.0 <= factor <= MAX_ACTIVITY_FACTOR

    def test_dtype_mismatch_rejected(self, a100, gaussian_activity):
        launch = plan_launch(GemmProblem.square(256, dtype="fp32"), a100)
        with pytest.raises(PowerModelError):
            PowerModel(a100).estimate(launch, gaussian_activity)

    def test_process_variation_included_when_requested(self, gaussian_activity):
        device = Device.create("a100", instance_id=3)
        launch = plan_launch(GemmProblem.square(256, dtype="fp16_t"), device)
        model = PowerModel(device)
        with_variation = model.estimate(launch, gaussian_activity, include_process_variation=True)
        without = model.estimate(launch, gaussian_activity, include_process_variation=False)
        assert with_variation.watts - without.watts == pytest.approx(
            device.process_variation_watts()
        )

    def test_component_breakdown_keys(self, a100, gaussian_activity):
        launch = plan_launch(GemmProblem.square(256, dtype="fp16_t"), a100)
        estimate = PowerModel(a100).estimate(launch, gaussian_activity)
        assert set(estimate.component_breakdown) == {"operand", "multiplier", "datapath", "memory"}

    def test_power_limit_forces_throttle(self, a100, gaussian_activity):
        launch = plan_launch(GemmProblem.square(2048, dtype="fp16_t"), a100)
        estimate = PowerModel(a100).estimate(
            launch, gaussian_activity, power_limit_watts=150.0, include_process_variation=False
        )
        assert estimate.throttled
        assert estimate.watts <= 150.0 + 1e-6
        assert estimate.clock_scale < 1.0

    def test_custom_weights_change_factor(self, a100, gaussian_activity):
        only_multiplier = ComponentWeights(operand=0, multiplier=1, datapath=0, memory=0)
        model = PowerModel(a100, weights=only_multiplier)
        assert model.activity_factor(gaussian_activity) == pytest.approx(
            min(gaussian_activity.multiplier_activity, MAX_ACTIVITY_FACTOR)
        )

    def test_idle_estimate(self, a100):
        idle = PowerModel(a100).idle_estimate()
        assert idle == pytest.approx(a100.idle_watts + a100.process_variation_watts())

    def test_occupancy_scales_power(self, a100, gaussian_activity):
        model = PowerModel(a100)
        small = model.estimate(
            plan_launch(GemmProblem.square(256, dtype="fp16_t"), a100),
            gaussian_activity,
            include_process_variation=False,
        )
        large = model.estimate(
            plan_launch(GemmProblem.square(2048, dtype="fp16_t"), a100),
            gaussian_activity,
            include_process_variation=False,
        )
        assert large.watts > small.watts


class TestEnergy:
    def test_energy_joules(self):
        assert energy_joules(100.0, 2.0) == 200.0

    def test_energy_invalid(self):
        with pytest.raises(PowerModelError):
            energy_joules(-1.0, 1.0)
        with pytest.raises(PowerModelError):
            energy_joules(1.0, -1.0)

    def test_energy_estimate_properties(self):
        estimate = EnergyEstimate(power_watts=250.0, iteration_time_s=1e-4, iterations=1000)
        assert estimate.iteration_energy_j == pytest.approx(0.025)
        assert estimate.iteration_energy_mj == pytest.approx(25.0)
        assert estimate.total_energy_j == pytest.approx(25.0)
        assert estimate.total_duration_s == pytest.approx(0.1)

    def test_efficiency(self):
        estimate = EnergyEstimate(power_watts=100.0, iteration_time_s=1e-3, iterations=1)
        assert estimate.efficiency_flops_per_joule(1e9) == pytest.approx(1e10)

    def test_invalid_iterations(self):
        with pytest.raises(PowerModelError):
            EnergyEstimate(power_watts=1.0, iteration_time_s=1.0, iterations=-1)


class TestRoofline:
    def test_compute_bound_time(self):
        assert compute_bound_time_s(1e12, 1e12, 1.0) == pytest.approx(1.0)
        assert compute_bound_time_s(1e12, 1e12, 0.5) == pytest.approx(2.0)

    def test_memory_bound_time(self):
        assert memory_bound_time_s(1e9, 1e9) == pytest.approx(1.0)

    def test_roofline_overlap(self):
        assert roofline_time_s(2.0, 1.0, overlap=1.0) == pytest.approx(2.0)
        assert roofline_time_s(2.0, 1.0, overlap=0.0) == pytest.approx(3.0)
        assert roofline_time_s(2.0, 1.0, overlap=0.5) == pytest.approx(2.5)

    def test_invalid_inputs(self):
        with pytest.raises(PowerModelError):
            compute_bound_time_s(1.0, 0.0)
        with pytest.raises(PowerModelError):
            compute_bound_time_s(1.0, 1.0, efficiency=0.0)
        with pytest.raises(PowerModelError):
            memory_bound_time_s(1.0, 0.0)
        with pytest.raises(PowerModelError):
            roofline_time_s(1.0, 1.0, overlap=2.0)


class TestRuntimeModel:
    def test_fp16t_faster_than_fp32(self, a100):
        model = RuntimeModel()
        fp32 = model.estimate(plan_launch(GemmProblem.square(2048, dtype="fp32"), a100))
        fp16t = model.estimate(plan_launch(GemmProblem.square(2048, dtype="fp16_t"), a100))
        assert fp16t.iteration_time_s < fp32.iteration_time_s

    def test_throttle_slows_compute(self, a100):
        model = RuntimeModel()
        launch = plan_launch(GemmProblem.square(2048, dtype="fp16_t"), a100)
        full = model.estimate(launch, clock_scale=1.0)
        half = model.estimate(launch, clock_scale=0.5)
        assert half.compute_time_s == pytest.approx(2.0 * full.compute_time_s)

    def test_invalid_clock_scale(self, a100):
        launch = plan_launch(GemmProblem.square(256, dtype="fp16_t"), a100)
        with pytest.raises(PowerModelError):
            RuntimeModel().estimate(launch, clock_scale=0.0)

    def test_large_gemm_is_compute_bound(self, a100):
        estimate = RuntimeModel().estimate(plan_launch(GemmProblem.square(2048, dtype="fp32"), a100))
        assert estimate.compute_bound

    def test_efficiency_override(self, a100):
        launch = plan_launch(GemmProblem.square(1024, dtype="fp16_t"), a100)
        slow = RuntimeModel({"fp16_t": 0.4}).estimate(launch)
        fast = RuntimeModel({"fp16_t": 0.9}).estimate(launch)
        assert slow.iteration_time_s > fast.iteration_time_s

    def test_invalid_efficiency_override(self):
        with pytest.raises(PowerModelError):
            RuntimeModel({"fp16_t": 1.5})

    def test_runtime_in_reasonable_range_for_paper_config(self, a100):
        # 2048^3 FP16-T on an A100: tens to a few hundred microseconds.
        estimate = RuntimeModel().estimate(plan_launch(GemmProblem.square(2048, dtype="fp16_t"), a100))
        assert 20e-6 < estimate.iteration_time_s < 500e-6
        assert estimate.iteration_time_us == pytest.approx(estimate.iteration_time_s * 1e6)
