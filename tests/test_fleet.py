"""Unit tests for :mod:`repro.fleet`: wire format, scheduler, CLI.

The property suite lives in ``tests/test_fleet_invariants.py`` and the
determinism/replay/cache-collapse harness in ``tests/test_fleet_replay.py``;
this file covers the deterministic single-case behaviour of each layer.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import FleetError
from repro.fleet import (
    CapEvent,
    DiscreteTimeScheduler,
    FleetSpec,
    KernelEstimate,
    Trace,
    TraceJob,
    WorkloadSpec,
    generate_trace,
)
from repro.fleet.__main__ import main as fleet_main
from repro.fleet.trace import TRACE_FORMAT, default_fleet_seed
from repro.gpu.specs import get_gpu_spec

def small_trace(**overrides) -> Trace:
    fields = dict(
        name="unit",
        tick_s=60.0,
        workloads={
            "w1": WorkloadSpec(matrix_size=128, iterations=500),
            "w2": WorkloadSpec(dtype="fp32", matrix_size=128, iterations=500),
        },
        jobs=(
            TraceJob(arrival_tick=0, tenant="a", workload="w1", kernels=100),
            TraceJob(arrival_tick=0, tenant="b", workload="w2", kernels=100),
            TraceJob(arrival_tick=2, tenant="a", workload="w2", kernels=50),
        ),
    )
    fields.update(overrides)
    return Trace(**fields)


def synthetic_estimates(
    trace: Trace, fleet: FleetSpec, power: float = 150.0, base_time: float = 0.05
) -> "dict[tuple[str, str], KernelEstimate]":
    return {
        (workload, model): KernelEstimate(
            workload=workload,
            gpu_model=model,
            unconstrained_power_watts=power,
            base_iteration_time_s=base_time,
            spec=get_gpu_spec(model),
        )
        for workload in trace.workloads
        for model in fleet.models()
    }


class TestWorkloadSpec:
    def test_invalid_dtype_rejected_at_build_time(self):
        with pytest.raises(FleetError, match="invalid workload"):
            WorkloadSpec(dtype="nope")

    def test_invalid_pattern_rejected_at_build_time(self):
        with pytest.raises(FleetError, match="invalid workload"):
            WorkloadSpec(pattern_family="not-a-pattern")

    def test_to_config_carries_workload_axes(self):
        spec = WorkloadSpec(
            pattern_family="sparsity",
            pattern_params={"sparsity": 0.5},
            dtype="fp32",
            matrix_size=192,
            iterations=1234,
        )
        config = spec.to_config(gpu="h100")
        assert config.pattern_family == "sparsity"
        assert config.pattern_params == {"sparsity": 0.5}
        assert config.dtype == "fp32"
        assert config.matrix_size == 192
        assert config.iterations == 1234
        assert config.gpu == "h100"

    def test_round_trip(self):
        spec = WorkloadSpec(pattern_family="value_set", pattern_params={"set_size": 8})
        assert WorkloadSpec.from_dict(spec.as_dict()) == spec


class TestTraceWireFormat:
    def test_round_trip(self):
        trace = small_trace()
        assert Trace.from_dict(trace.as_dict()).as_dict() == trace.as_dict()

    def test_unknown_top_level_field_rejected(self):
        payload = small_trace().as_dict()
        payload["surprise"] = 1
        with pytest.raises(FleetError, match="surprise"):
            Trace.from_dict(payload)

    def test_unknown_job_field_rejected(self):
        payload = small_trace().as_dict()
        payload["jobs"][0]["gpu"] = "a100"
        with pytest.raises(FleetError, match="gpu"):
            Trace.from_dict(payload)

    def test_unknown_workload_field_rejected(self):
        payload = small_trace().as_dict()
        payload["workloads"]["w1"]["priority"] = 3
        with pytest.raises(FleetError, match="priority"):
            Trace.from_dict(payload)

    def test_wrong_format_tag_rejected(self):
        payload = small_trace().as_dict()
        payload["format"] = "repro.fleet.trace/v999"
        with pytest.raises(FleetError, match="format"):
            Trace.from_dict(payload)

    def test_job_referencing_missing_workload_rejected(self):
        with pytest.raises(FleetError, match="undeclared workload"):
            small_trace(
                jobs=(TraceJob(arrival_tick=0, tenant="a", workload="ghost"),)
            )

    def test_save_and_load(self, tmp_path):
        trace = small_trace()
        path = trace.save_json(tmp_path / "t.json")
        loaded = Trace.load(path)
        assert loaded.as_dict() == trace.as_dict()
        assert json.loads(path.read_text())["format"] == TRACE_FORMAT


class TestGenerators:
    @pytest.mark.parametrize("kind", ["diurnal", "training", "mixed"])
    def test_same_seed_same_trace(self, kind):
        first = generate_trace(kind, ticks=6, seed=11)
        second = generate_trace(kind, ticks=6, seed=11)
        assert first.as_dict() == second.as_dict()

    @pytest.mark.parametrize("kind", ["diurnal", "training", "mixed"])
    def test_different_seed_different_jobs(self, kind):
        first = generate_trace(kind, ticks=12, seed=1)
        second = generate_trace(kind, ticks=12, seed=2)
        assert first.as_dict() != second.as_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(FleetError, match="unknown trace kind"):
            generate_trace("surprise")

    def test_mixed_catalogue_bound(self):
        with pytest.raises(FleetError, match="distinct_workloads"):
            generate_trace("mixed", distinct_workloads=10_000)

    def test_seed_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_SEED", "42")
        assert default_fleet_seed() == 42
        assert (
            generate_trace("diurnal", ticks=4).as_dict()
            == generate_trace("diurnal", ticks=4, seed=42).as_dict()
        )

    def test_seed_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_SEED", "not-a-number")
        with pytest.raises(FleetError, match="REPRO_FLEET_SEED"):
            default_fleet_seed()


class TestFleetSpec:
    def test_from_counts_and_models(self):
        fleet = FleetSpec.from_counts({"a100": 2, "h100": 1})
        assert len(fleet) == 3
        assert fleet.model_counts() == {"a100": 2, "h100": 1}
        assert list(fleet.models()) == ["a100", "h100"]

    def test_unknown_gpu_model_rejected(self):
        with pytest.raises(FleetError):
            FleetSpec.from_counts({"tpu9000": 1})

    def test_power_limit_defaults_to_tdp(self):
        fleet = FleetSpec.from_counts({"a100": 1})
        tdp = get_gpu_spec("a100").tdp_watts
        assert fleet.power_limit_at(0, 0) == tdp

    def test_cap_events_last_one_at_or_before_tick_wins(self):
        fleet = FleetSpec.from_counts(
            {"a100": 1},
            cap_events=[
                CapEvent(tick=5, cap_watts=200.0),
                CapEvent(tick=10, cap_watts=None),
            ],
        )
        tdp = get_gpu_spec("a100").tdp_watts
        assert fleet.power_limit_at(0, 0) == tdp
        assert fleet.power_limit_at(5, 0) == 200.0
        assert fleet.power_limit_at(9, 0) == 200.0
        assert fleet.power_limit_at(10, 0) == tdp

    def test_cap_event_gpu_subset(self):
        fleet = FleetSpec.from_counts(
            {"a100": 2}, cap_events=[CapEvent(tick=0, cap_watts=100.0, gpus=(1,))]
        )
        tdp = get_gpu_spec("a100").tdp_watts
        assert fleet.power_limit_at(0, 0) == tdp
        assert fleet.power_limit_at(0, 1) == 100.0

    def test_cap_never_exceeds_tdp(self):
        fleet = FleetSpec.from_counts({"a100": 1}, cap_watts=5000.0)
        assert fleet.power_limit_at(0, 0) == get_gpu_spec("a100").tdp_watts

    def test_round_trip(self):
        fleet = FleetSpec.from_counts(
            {"a100": 2, "h100": 1},
            cap_watts=250.0,
            cap_events=[CapEvent(tick=3, cap_watts=120.0)],
        )
        assert FleetSpec.from_dict(fleet.as_dict()).as_dict() == fleet.as_dict()

    def test_cap_event_bad_gpu_index_rejected(self):
        with pytest.raises(FleetError):
            FleetSpec.from_counts(
                {"a100": 1}, cap_events=[CapEvent(tick=0, cap_watts=100.0, gpus=(7,))]
            )


class TestScheduler:
    def test_jobs_placed_in_arrival_order_without_overlap(self):
        trace = small_trace()
        fleet = FleetSpec.from_counts({"a100": 1})
        schedule = DiscreteTimeScheduler(fleet).schedule(
            trace, synthetic_estimates(trace, fleet)
        )
        assert len(schedule.placements) == 3
        spans = sorted(
            (p.start_tick, p.end_tick) for p in schedule.placements
        )
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            assert start >= prev_end

    def test_cap_resolves_to_throttled_slower_jobs(self):
        trace = small_trace()
        uncapped_fleet = FleetSpec.from_counts({"a100": 1})
        capped_fleet = FleetSpec.from_counts({"a100": 1}, cap_watts=100.0)
        estimates = synthetic_estimates(
            trace, uncapped_fleet, power=150.0, base_time=1.0
        )
        free = DiscreteTimeScheduler(uncapped_fleet).schedule(trace, estimates)
        capped = DiscreteTimeScheduler(capped_fleet).schedule(trace, estimates)
        assert free.throttled_jobs == 0
        assert capped.throttled_jobs == 3
        assert capped.horizon_ticks > free.horizon_ticks
        for placement in capped.placements:
            assert placement.throttled
            assert placement.power_watts <= 100.0 + 1e-9
            assert placement.clock_scale < 1.0

    def test_missing_estimate_raises(self):
        trace = small_trace()
        fleet = FleetSpec.from_counts({"a100": 1})
        with pytest.raises(FleetError, match="no estimate"):
            DiscreteTimeScheduler(fleet).schedule(trace, {})

    def test_empty_trace_empty_schedule(self):
        trace = small_trace(jobs=())
        fleet = FleetSpec.from_counts({"a100": 2})
        schedule = DiscreteTimeScheduler(fleet).schedule(trace, {})
        assert list(schedule.placements) == []
        assert schedule.horizon_ticks == 0


class TestCli:
    def test_generate_simulate_summarize(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        result_path = tmp_path / "result.json"
        assert (
            fleet_main(
                [
                    "generate-trace",
                    "--kind",
                    "mixed",
                    "--seed",
                    "5",
                    "--ticks",
                    "4",
                    "--out",
                    str(trace_path),
                ]
            )
            == 0
        )
        assert trace_path.exists()
        capsys.readouterr()
        assert (
            fleet_main(
                [
                    "simulate",
                    str(trace_path),
                    "--gpus",
                    "a100:2",
                    "--out",
                    str(result_path),
                    "--json",
                ]
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs"] > 0
        assert result_path.exists()
        assert fleet_main(["summarize", str(result_path), "--json"]) == 0
        resummarized = json.loads(capsys.readouterr().out)
        assert resummarized["jobs"] > 0
        assert fleet_main(["summarize", str(trace_path)]) == 0
        assert "workloads" in capsys.readouterr().out

    def test_expect_matches_and_mismatches(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        golden_path = tmp_path / "golden.json"
        fleet_main(
            ["generate-trace", "--kind", "training", "--seed", "3", "--ticks", "3",
             "--out", str(trace_path)]
        )
        capsys.readouterr()
        fleet_main(["simulate", str(trace_path), "--gpus", "a100:1", "--json"])
        summary = json.loads(capsys.readouterr().out)
        golden_path.write_text(json.dumps(summary))
        assert (
            fleet_main(
                ["simulate", str(trace_path), "--gpus", "a100:1",
                 "--expect", str(golden_path), "--json"]
            )
            == 0
        )
        capsys.readouterr()
        # A different fleet must fail the replay check.
        assert (
            fleet_main(
                ["simulate", str(trace_path), "--gpus", "a100:2",
                 "--expect", str(golden_path), "--json"]
            )
            == 1
        )
        assert "MISMATCH" in capsys.readouterr().err

    def test_bad_gpus_spec_is_an_error_not_a_traceback(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        fleet_main(
            ["generate-trace", "--kind", "training", "--seed", "1", "--ticks", "2",
             "--out", str(trace_path)]
        )
        capsys.readouterr()
        assert fleet_main(["simulate", str(trace_path), "--gpus", ":3"]) == 1
        assert "error:" in capsys.readouterr().err
