"""Chaos suite for :mod:`repro.faults` and the resilience layer.

The invariant asserted throughout (and in CI's ``chaos`` job, which runs
this file under two fixed ``REPRO_FAULTS_SEED`` values): under any fault
schedule, a run either completes with results **bit-for-bit identical**
to the fault-free path or raises a **typed** :class:`ReproError` — never
a hang, a wrong answer, or a stuck future.  Degradations (memory-only
cache, threads fallback) must raise their sticky flags.

Process-pool fault tests drive the schedule through the environment
(``REPRO_FAULTS`` + :func:`repro.faults.reset`): workers resolve the
schedule lazily from their inherited environ, which is exactly the
production path.  In-process tests install schedules directly.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

import repro.faults as faults
from repro.cache.resilience import ResilienceStats, RetryPolicy
from repro.cache.sqlite_store import DB_FILENAME, SqliteStore
from repro.cache.store import ExperimentCache, JsonDiskCache
from repro.errors import (
    FaultInjectionError,
    InjectedFaultError,
    ReproError,
    ServiceTimeoutError,
)
from repro.experiments.harness import run_experiment
from repro.experiments.sweep import RunStats, run_configs, sweep_configs
from repro.faults import (
    FaultSchedule,
    FaultSpec,
    fault_point,
    install_schedule,
    parse_schedule,
    register_fault_modes,
    schedule_from_env,
    uninstall_schedule,
)
from repro.parallel.backends import ProcessExecutor
from repro.serve.service import EstimationService, ServiceConfig


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    """Run every test against a clean environment and leave the lazy
    sentinel behind, so no schedule can bleed into other test modules."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    yield
    faults.reset()


def _install(text: str, seed: int = 0) -> FaultSchedule:
    return install_schedule(FaultSchedule(parse_schedule(text), seed=seed))


#: CI's ``chaos`` job runs this file under two fixed ``REPRO_FAULTS_SEED``
#: values; the end-to-end schedule sweep derives its seeds from the ambient
#: value (captured at import time, before the isolation fixture scrubs the
#: environment) so each CI leg explores a different — but still fully
#: deterministic — fault sequence.
AMBIENT_SEED = int(os.environ.get("REPRO_FAULTS_SEED", "0") or "0")


# Top-level helpers for the process-pool tests (must be picklable).
def _double(x):
    return x * 2


def _encode_json(values):
    return json.dumps(list(values)).encode()


def _decode_json(payload):
    return json.loads(payload)


class _StrCache(JsonDiskCache):
    """Minimal concrete cache for exercising the disk tiers directly."""

    def _check_value(self, value):
        pass

    def _serialize(self, value):
        return {"value": value}

    def _deserialize(self, data):
        return data["value"]


# ------------------------------------------------------------------ parsing


class TestSpecParsing:
    def test_three_trigger_forms_round_trip(self):
        always = FaultSpec.parse("cache.sqlite.write:busy")
        nth = FaultSpec.parse("pool.worker:kill@3")
        bernoulli = FaultSpec.parse("cache.sqlite.read:corrupt@0.25")
        assert (always.at, always.probability) == (None, None)
        assert (nth.at, nth.probability) == (3, None)
        assert (bernoulli.at, bernoulli.probability) == (None, 0.25)
        for spec in (always, nth, bernoulli):
            assert FaultSpec.parse(str(spec)) == spec

    def test_schedule_splits_and_skips_blanks(self):
        specs = parse_schedule("a.b:x@1; ;c.d:y@0.5;")
        assert [str(spec) for spec in specs] == ["a.b:x@1", "c.d:y@0.5"]

    @pytest.mark.parametrize(
        "text",
        [
            "no-colon",
            "point:",
            ":mode",
            "UPPER.case:mode",
            "point:bad mode",
            "point:mode@0",
            "point:mode@1.5",
            "point:mode@-0.1",
            "point:mode@banana",
        ],
    )
    def test_malformed_specs_raise_typed_error(self, text):
        with pytest.raises(FaultInjectionError):
            FaultSpec.parse(text)

    def test_env_schedule(self, monkeypatch):
        assert schedule_from_env({}) is None
        assert schedule_from_env({"REPRO_FAULTS": "  "}) is None
        schedule = schedule_from_env(
            {"REPRO_FAULTS": "pool.worker:kill@2", "REPRO_FAULTS_SEED": "7"}
        )
        assert schedule.seed == 7
        assert [str(spec) for spec in schedule.specs] == ["pool.worker:kill@2"]
        with pytest.raises(FaultInjectionError):
            schedule_from_env(
                {"REPRO_FAULTS": "a.b:x", "REPRO_FAULTS_SEED": "not-an-int"}
            )

    def test_unknown_mode_raises_at_trigger(self):
        schedule = FaultSchedule(parse_schedule("cache.sqlite.read:nosuchmode"))
        with pytest.raises(FaultInjectionError, match="nosuchmode"):
            schedule.hit("cache.sqlite.read")


# ------------------------------------------------------------------- replay


class TestReplayDeterminism:
    @pytest.fixture(autouse=True)
    def _demo_point(self):
        # A mode that only records (builder returns no exception), so the
        # fired log can be compared over hundreds of invocations.
        register_fault_modes("demo.replay", {"record": lambda: None})

    def _drive(self, seed: int, hits: int = 200) -> "list[dict]":
        schedule = FaultSchedule(parse_schedule("demo.replay:record@0.3"), seed=seed)
        for _ in range(hits):
            schedule.hit("demo.replay")
        return schedule.fired

    def test_same_seed_replays_bit_for_bit(self):
        first, second = self._drive(seed=7), self._drive(seed=7)
        assert first == second
        assert first  # the schedule actually fired
        assert all(
            set(entry) == {"point", "mode", "invocation"} for entry in first
        )

    def test_different_seed_changes_the_sequence(self):
        assert self._drive(seed=7) != self._drive(seed=8)

    def test_nth_invocation_fires_exactly_once(self):
        schedule = FaultSchedule(parse_schedule("demo.replay:record@5"))
        for _ in range(20):
            schedule.hit("demo.replay")
        assert schedule.fired == [
            {"point": "demo.replay", "mode": "record", "invocation": 5}
        ]
        assert schedule.hits("demo.replay") == 20

    def test_describe_reports_schedule_state(self):
        schedule = FaultSchedule(parse_schedule("demo.replay:record@1"), seed=3)
        schedule.hit("demo.replay")
        doc = schedule.describe()
        assert doc["seed"] == 3
        assert doc["specs"] == ["demo.replay:record@1"]
        assert doc["hits"] == {"demo.replay": 1}
        assert len(doc["fired"]) == 1


class TestActivation:
    def test_inactive_point_is_a_no_op(self):
        uninstall_schedule()
        fault_point("cache.sqlite.write")  # must not raise

    def test_reset_resolves_from_environment(self, monkeypatch):
        register_fault_modes("demo.env", {"boom": lambda: InjectedFaultError("boom")})
        monkeypatch.setenv("REPRO_FAULTS", "demo.env:boom@1")
        faults.reset()
        with pytest.raises(InjectedFaultError):
            fault_point("demo.env")
        fault_point("demo.env")  # @1 fired; second invocation passes

    def test_uninstall_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "demo.env:boom@1")
        uninstall_schedule()
        fault_point("demo.env")  # must not raise


# ----------------------------------------------------------- cache resilience


@pytest.fixture
def fast_retry():
    return RetryPolicy(attempts=3, base_delay_s=0.0005, max_delay_s=0.002)


class TestSqliteResilience:
    def test_busy_write_is_retried_and_counted(self, tmp_path, fast_retry):
        _install("cache.sqlite.write:busy@1")
        store = SqliteStore(tmp_path, retry=fast_retry)
        store.put("k", '{"v": 1}')
        assert store.get("k") == '{"v": 1}'
        assert store.counters.retries == 1
        assert store.counters.backoff_s > 0
        store.close()

    def test_busy_exhaustion_surfaces_as_oserror(self, tmp_path, fast_retry):
        _install("cache.sqlite.write:busy")  # every invocation
        store = SqliteStore(tmp_path, retry=fast_retry)
        with pytest.raises(OSError, match="busy|locked"):
            store.put("k", "{}")
        assert store.counters.retries == fast_retry.attempts
        uninstall_schedule()
        store.put("k", "{}")  # the store stays usable once the fault clears
        store.close()

    def test_injected_corruption_quarantines_and_rebuilds(self, tmp_path, fast_retry):
        store = SqliteStore(tmp_path, retry=fast_retry)
        store.put("k", '{"v": 1}')
        _install("cache.sqlite.read:corrupt@1")
        # The read that trips corruption comes back empty (the database was
        # quarantined and rebuilt), never wrong and never an exception.
        assert store.get("k") is None
        assert store.counters.quarantines == 1
        quarantined = list(tmp_path.glob(f"{DB_FILENAME}.corrupt.*"))
        assert len(quarantined) == 1
        store.put("k2", '{"v": 2}')  # the rebuilt database works
        assert store.get("k2") == '{"v": 2}'
        store.close()

    def test_real_corruption_on_open_quarantines(self, tmp_path, fast_retry):
        store = SqliteStore(tmp_path, retry=fast_retry)
        store.put("k", "{}")
        store.close()
        (tmp_path / DB_FILENAME).write_bytes(b"this is not a database file")
        counters = ResilienceStats()
        reopened = SqliteStore(tmp_path, retry=fast_retry, counters=counters)
        assert counters.quarantines == 1
        assert len(reopened) == 0
        reopened.put("k", "{}")
        assert reopened.get("k") == "{}"
        reopened.close()


class TestMemoryOnlyDegradation:
    def test_sqlite_enospc_degrades_sticky_and_correct(self, tmp_path):
        _install("cache.sqlite.write:full@1")
        cache = _StrCache(disk_dir=tmp_path, disk_backend="sqlite")
        cache.put("k", "v")
        assert cache.resilience.degraded
        assert cache.resilience.degraded_reason.startswith("memory-only:")
        assert cache.get("k") == "v"  # the memory tier still has the entry
        cache.put("k2", "v2")  # later puts keep working, memory-only
        assert cache.get("k2") == "v2"
        first_reason = cache.resilience.degraded_reason
        cache.resilience.degrade("a different reason")
        assert cache.resilience.degraded_reason == first_reason  # sticky

    def test_json_backend_degrades_on_readonly_fs(self, tmp_path):
        _install("cache.json.write:readonly@1")
        cache = _StrCache(disk_dir=tmp_path, disk_backend="json")
        cache.put("k", "v")
        assert cache.resilience.degraded
        assert cache.get("k") == "v"

    def test_per_entry_read_error_does_not_degrade(self, tmp_path):
        cache = _StrCache(disk_dir=tmp_path, disk_backend="json")
        cache.put("k", "v")
        _install("cache.json.read:error")  # EIO on every read
        fresh = _StrCache(disk_dir=tmp_path, disk_backend="json")
        assert fresh.get("k") is None  # unreadable entry is a miss...
        assert not fresh.resilience.degraded  # ...not a dead tier
        assert fresh.stats.disk_errors == 1


# ------------------------------------------------------------ pool resilience


class TestPoolResilience:
    def _executor(self) -> ProcessExecutor:
        return ProcessExecutor(
            workers=1,
            chunksize=1,
            transfer="pickle",
            encode=_encode_json,
            decode=_decode_json,
        )

    def test_single_breakage_rebuilds_and_resubmits(self, monkeypatch):
        # kill@2: the first worker dies on its second chunk; the rebuilt
        # pool's fresh worker (invocation counter restarts per process)
        # finishes the resubmitted chunk on its first.
        monkeypatch.setenv("REPRO_FAULTS", "pool.worker:kill@2")
        faults.reset()
        executor = self._executor()
        try:
            results = list(executor.map(_double, [1, 2]))
        finally:
            executor.shutdown()
        assert results == [2, 4]
        assert executor.resilience.pool_rebuilds == 1
        assert executor.resilience.chunks_resubmitted == 1
        assert executor.resilience.fallback_backend == ""

    def test_repeated_breakage_falls_back_to_threads(self, monkeypatch):
        # kill@1: every fresh worker dies on its first chunk, so the
        # rebuilt pool breaks too and the remaining items run on threads
        # in-process (where no pool.worker point fires).
        monkeypatch.setenv("REPRO_FAULTS", "pool.worker:kill@1")
        faults.reset()
        executor = self._executor()
        try:
            results = list(executor.map(_double, [1, 2, 3]))
        finally:
            executor.shutdown()
        assert results == [2, 4, 6]
        assert executor.resilience.pool_rebuilds == 1
        assert executor.resilience.fallback_backend == "threads"
        assert executor.resilience.chunks_resubmitted == 6  # 3 + 3

    def test_worker_raise_propagates_typed_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "pool.worker:raise@1")
        faults.reset()
        executor = self._executor()
        try:
            with pytest.raises(InjectedFaultError):
                list(executor.map(_double, [1, 2]))
        finally:
            executor.shutdown(cancel=True)

    def test_sweep_results_identical_under_worker_kills(
        self, quiet_config, monkeypatch
    ):
        configs = sweep_configs(
            quiet_config(pattern_family="sparsity", matrix_size=32),
            "sparsity",
            [0.0, 0.5, 1.0],
        )
        baseline = [
            r.as_dict()
            for r in run_configs(configs, workers=1, cache=None, activity_cache=None)
        ]
        monkeypatch.setenv("REPRO_FAULTS", "pool.worker:kill@1")
        faults.reset()
        stats = RunStats()
        chaotic = [
            r.as_dict()
            for r in run_configs(
                configs,
                workers=2,
                backend="processes",
                cache=None,
                activity_cache=None,
                stats=stats,
            )
        ]
        assert chaotic == baseline
        assert stats.pool_rebuilds == 1
        assert stats.degraded_backend == "threads"
        assert stats.chunks_resubmitted > 0


# ----------------------------------------------------------- serve resilience


def _service(config=None, compute=None) -> EstimationService:
    return EstimationService(
        config if config is not None else ServiceConfig(batch_window_s=0.01),
        cache=None,
        activity_cache=None,
        plan_cache=None,
        compute=compute,
    )


class TestServeResilience:
    def test_deadline_maps_to_typed_timeout(self, quiet_config):
        def slow_compute(configs, **kwargs):
            time.sleep(0.4)
            return run_configs(configs, **kwargs)

        service = _service(
            ServiceConfig(batch_window_s=0.0, timeout_s=0.05), compute=slow_compute
        )

        async def scenario():
            try:
                with pytest.raises(ServiceTimeoutError, match="deadline"):
                    await service.submit(quiet_config())
                # The shielded computation keeps running; let it publish so
                # the in-flight future resolves before the service closes.
                await asyncio.sleep(0.6)
            finally:
                await service.close()

        asyncio.run(scenario())
        assert service.stats.timeouts == 1

    def test_injected_batch_fault_is_isolated(self, quiet_config):
        # serve.batch:error@1 poisons exactly the first (two-config) batch;
        # isolation re-runs each config alone and both succeed.
        _install("serve.batch:error@1")
        config_a, config_b = quiet_config(), quiet_config(seeds=2)
        service = _service(ServiceConfig(batch_window_s=0.05))

        async def scenario():
            try:
                return await asyncio.gather(
                    service.submit(config_a), service.submit(config_b)
                )
            finally:
                await service.close()

        result_a, result_b = asyncio.run(scenario())
        assert service.stats.isolated_retries == 2
        assert service.stats.errors == 0
        assert result_a.as_dict() == run_experiment(config_a, cache=None).as_dict()
        assert result_b.as_dict() == run_experiment(config_b, cache=None).as_dict()

    def test_single_config_batch_fault_fails_typed_then_recovers(self, quiet_config):
        _install("serve.batch:error@1")
        config = quiet_config()
        service = _service()

        async def scenario():
            try:
                with pytest.raises(InjectedFaultError):
                    await service.submit(config)
                return await service.submit(config)  # invocation 2: no fault
            finally:
                await service.close()

        result = asyncio.run(scenario())
        assert service.stats.errors == 1
        assert result.as_dict() == run_experiment(config, cache=None).as_dict()

    def test_health_reports_degraded_cache_tier(self, tmp_path):
        cache = ExperimentCache(disk_dir=tmp_path, disk_backend="sqlite")
        cache.resilience.degrade("memory-only: injected for test")
        service = _service()
        service._cache = cache
        health = service.health()
        assert health["status"] == "degraded"
        assert any(
            reason.startswith("cache.experiment:") for reason in health["reasons"]
        )
        asyncio.run(service.close())


# ------------------------------------------------------- end-to-end schedules


#: Schedules CI sweeps under two fixed seeds; every one must leave sweep
#: results identical to the fault-free baseline (cache faults degrade the
#: cache, never the answers).
CHAOS_SCHEDULES = [
    "cache.sqlite.write:busy@0.5",
    "cache.sqlite.read:busy@0.5;cache.sqlite.write:busy@0.25",
    "cache.sqlite.read:corrupt@2",
    "cache.sqlite.write:full@1",
    "cache.json.write:enospc@1",
]


class TestChaosSchedules:
    @pytest.mark.parametrize("schedule_text", CHAOS_SCHEDULES)
    @pytest.mark.parametrize("seed", [AMBIENT_SEED, AMBIENT_SEED + 1])
    def test_results_identical_or_typed_error(
        self, schedule_text, seed, quiet_config, tmp_path, fast_retry, monkeypatch
    ):
        # Keep injected busy-retry backoff fast.
        monkeypatch.setenv("REPRO_CACHE_RETRIES", "3")
        monkeypatch.setenv("REPRO_CACHE_BACKOFF_MS", "1")
        configs = sweep_configs(
            quiet_config(pattern_family="sparsity", matrix_size=32),
            "sparsity",
            [0.0, 0.5],
        )
        baseline = [
            r.as_dict()
            for r in run_configs(configs, workers=1, cache=None, activity_cache=None)
        ]
        backend = "json" if "cache.json" in schedule_text else "sqlite"
        cache = ExperimentCache(disk_dir=tmp_path / "tier", disk_backend=backend)
        _install(schedule_text, seed=seed)
        try:
            chaotic = [
                r.as_dict()
                for r in run_configs(
                    configs, workers=1, cache=cache, activity_cache=None
                )
            ]
        except ReproError:
            return  # a typed failure is an accepted outcome; wrong data is not
        assert chaotic == baseline
        if "full@1" in schedule_text or "enospc@1" in schedule_text:
            assert cache.resilience.degraded  # loud, never silent

    def test_replayed_schedule_reproduces_the_fault_log(
        self, quiet_config, tmp_path, monkeypatch
    ):
        """The marquee replay guarantee: same REPRO_FAULTS + seed over the
        same workload → the same injected-fault sequence, run after run."""
        monkeypatch.setenv("REPRO_CACHE_RETRIES", "3")
        monkeypatch.setenv("REPRO_CACHE_BACKOFF_MS", "1")
        configs = sweep_configs(
            quiet_config(pattern_family="sparsity", matrix_size=32),
            "sparsity",
            [0.0, 0.5],
        )
        logs = []
        for attempt in range(2):
            cache = ExperimentCache(
                disk_dir=tmp_path / f"run{attempt}", disk_backend="sqlite"
            )
            schedule = _install("cache.sqlite.write:busy@0.5", seed=11)
            run_configs(configs, workers=1, cache=cache, activity_cache=None)
            logs.append(schedule.fired)
            uninstall_schedule()
        assert logs[0] == logs[1]
        assert logs[0]  # the schedule fired at least once
