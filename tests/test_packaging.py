"""Packaging and CI-pipeline consistency checks."""

from __future__ import annotations

import tomllib
from pathlib import Path

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestPyproject:
    def test_exists_and_parses(self):
        path = REPO_ROOT / "pyproject.toml"
        assert path.exists(), "setup.py refers to pyproject.toml; it must exist"
        data = tomllib.loads(path.read_text())
        assert data["project"]["name"] == "repro-gpu-power"

    def test_version_single_source(self):
        """The dynamic version attribute must resolve to repro.__version__."""
        data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        assert "version" in data["project"]["dynamic"]
        attr = data["tool"]["setuptools"]["dynamic"]["version"]["attr"]
        assert attr == "repro._version.__version__"
        from repro._version import __version__

        assert repro.__version__ == __version__

    def test_numpy_dependency_declared(self):
        data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        assert any(dep.startswith("numpy") for dep in data["project"]["dependencies"])

    def test_pytest_config_targets_tier1_suite(self):
        data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        assert data["tool"]["pytest"]["ini_options"]["testpaths"] == ["tests"]

    def test_ruff_config_present(self):
        data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        assert "ruff" in data["tool"]


class TestWorkflow:
    def test_ci_workflow_exists(self):
        path = REPO_ROOT / ".github" / "workflows" / "ci.yml"
        assert path.exists()
        text = path.read_text()
        # tier-1 command, benchmark smoke (with timing artifact) and lint
        # gates must all be wired.
        assert "python -m pytest -x -q" in text
        assert "bench_engine_performance.py" in text
        assert "--benchmark-json" in text
        assert "upload-artifact" in text
        assert "ruff check" in text
        assert "examples/quickstart.py" in text
