"""Determinism, golden replay, cache collapse and serve replay for repro.fleet.

The replay contract (ISSUE satellite 2-4):

* same trace + same ``REPRO_FLEET_SEED`` ⇒ bit-for-bit identical power
  series whichever execution backend resolves the estimates;
* the golden trace under ``tests/data/`` reproduces its checked-in summary
  *exactly* (the CLI ``--expect`` path CI runs, and the API path here);
* a trace scheduling tens of thousands of kernels over a small workload
  catalogue runs the estimation engine at most once per distinct activity
  fingerprint — observed through the live default-cache counters — and
  keeps doing so under injected cache faults;
* replaying a trace through the serving layer coalesces duplicate
  workloads and moves the cache-tier counters.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.activity.sampler import SamplingConfig
from repro.cache.store import ActivityCache, ExperimentCache
from repro.experiments.sweep import RunStats
from repro.fleet import FleetSpec, CapEvent, Trace, TraceJob, WorkloadSpec, generate_trace, simulate
from repro.fleet.__main__ import main as fleet_main
from repro.telemetry.sampler import TelemetryConfig

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_TRACE = DATA_DIR / "fleet_golden_trace.json"
GOLDEN_SUMMARY = DATA_DIR / "fleet_golden_summary.json"

#: Quiet, small estimation overrides: trends are irrelevant here, speed and
#: determinism are what matters.
QUIET = {
    "telemetry": TelemetryConfig(noise_std_watts=0.0, drift_watts=0.0),
    "sampling": SamplingConfig(output_samples=64),
    "iterations": 200,
}


@pytest.fixture
def fresh_default_caches(monkeypatch):
    """Fresh in-memory default cache tiers, fully restored afterwards."""
    import repro.cache.store as store

    saved = (
        store._default_cache,
        store._default_initialized,
        store._default_activity_cache,
        store._default_activity_initialized,
        store._auto_pruned,
    )
    store.set_default_cache(ExperimentCache())
    store.set_default_activity_cache(ActivityCache())
    store._auto_pruned = True
    yield store
    (
        store._default_cache,
        store._default_initialized,
        store._default_activity_cache,
        store._default_activity_initialized,
        store._auto_pruned,
    ) = saved


def comparable(result) -> "dict":
    """Everything that must be bit-for-bit equal across backends.

    ``run_stats`` legitimately differs (backend name, timings); every
    other field — including the full per-tenant float series — must not.
    """
    payload = result.as_dict()
    payload.pop("run_stats")
    return payload


class TestBackendDeterminism:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace("mixed", ticks=5, seed=99, distinct_workloads=6)

    def test_bit_for_bit_across_backends(self, trace):
        fleet = FleetSpec.from_counts(
            {"a100": 3}, cap_events=[CapEvent(tick=2, cap_watts=58.0)]
        )
        reference = comparable(
            simulate(
                trace, fleet, workers=1, cache=None, activity_cache=None,
                estimation_overrides=QUIET,
            )
        )
        for workers, backend in ((2, "threads"), (2, "processes")):
            candidate = comparable(
                simulate(
                    trace,
                    fleet,
                    workers=workers,
                    backend=backend,
                    cache=None,
                    activity_cache=None,
                    estimation_overrides=QUIET,
                )
            )
            assert candidate == reference, f"{backend} diverged from serial"

    def test_fleet_seed_env_replays_the_generator(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_SEED", "777")
        first = generate_trace("diurnal", ticks=6)
        second = generate_trace("diurnal", ticks=6)
        assert first.as_dict() == second.as_dict()
        monkeypatch.setenv("REPRO_FLEET_SEED", "778")
        assert generate_trace("diurnal", ticks=6).as_dict() != first.as_dict()


class TestGoldenReplay:
    def test_golden_files_exist(self):
        assert GOLDEN_TRACE.exists()
        assert GOLDEN_SUMMARY.exists()

    def test_api_replay_matches_golden_summary_exactly(self):
        trace = Trace.load(GOLDEN_TRACE)
        fleet = FleetSpec.from_counts(
            {"a100": 2}, cap_events=[CapEvent(tick=2, cap_watts=58.0)]
        )
        result = simulate(trace, fleet, cache=None, activity_cache=None)
        golden = json.loads(GOLDEN_SUMMARY.read_text())
        assert result.summary() == golden

    def test_cli_expect_replay(self, capsys):
        code = fleet_main(
            [
                "simulate",
                str(GOLDEN_TRACE),
                "--gpus",
                "a100:2",
                "--cap-at",
                "2:58",
                "--expect",
                str(GOLDEN_SUMMARY),
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "replay OK" in captured.out

    def test_result_round_trips_through_json(self, tmp_path):
        trace = Trace.load(GOLDEN_TRACE)
        fleet = FleetSpec.from_counts({"a100": 2})
        result = simulate(
            trace, fleet, cache=None, activity_cache=None,
            estimation_overrides=QUIET,
        )
        path = result.save_json(tmp_path / "result.json")
        from repro.fleet import FleetResult

        loaded = FleetResult.load(path)
        assert loaded.summary() == result.summary()
        assert loaded.power_series_watts() == result.power_series_watts()
        assert loaded.tenant_energy_j() == result.tenant_energy_j()


class TestCacheCollapse:
    @pytest.fixture
    def big_trace(self):
        trace = generate_trace(
            "mixed", ticks=10, seed=4, distinct_workloads=8, kernels_per_job=400
        )
        assert trace.total_kernels >= 10_000
        assert len(trace.workloads) <= 64
        return trace

    def test_engine_runs_at_most_once_per_activity_fingerprint(
        self, big_trace, fresh_default_caches
    ):
        store = fresh_default_caches
        fleet = FleetSpec.from_counts({"a100": 4})
        stats = RunStats()
        result = simulate(
            big_trace, fleet, stats=stats, estimation_overrides=QUIET
        )
        used = len(big_trace.used_workloads())
        # Cold run: every used workload is estimated exactly once per GPU
        # model (one model here), never once per scheduled kernel.
        assert result.scheduled_kernels >= 10_000
        assert stats.executed == used
        tiers = store.peek_default_caches()
        activity_stats = tiers["activity"].stats
        # seeds=1 and one GPU model: one activity fingerprint per workload.
        assert activity_stats.puts == used
        assert activity_stats.misses == used

        # Warm run: the engine is not touched at all.
        warm_stats = RunStats()
        warm = simulate(
            big_trace, fleet, stats=warm_stats, estimation_overrides=QUIET
        )
        assert warm_stats.executed == 0
        assert warm_stats.cache_hits == used
        assert tiers["experiment"].stats.hits >= used
        assert comparable(warm) == comparable(result)

    @pytest.mark.parametrize("faults_seed", ["0", "20240817"])
    def test_collapse_survives_injected_cache_faults(
        self, big_trace, tmp_path, monkeypatch, faults_seed
    ):
        import repro.faults as faults

        fleet = FleetSpec.from_counts({"a100": 2})
        reference = comparable(
            simulate(
                big_trace, fleet, cache=None, activity_cache=None,
                estimation_overrides=QUIET,
            )
        )
        cache = ExperimentCache(disk_dir=tmp_path / "exp")
        activity_cache = ActivityCache(disk_dir=tmp_path / "act")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "cache.sqlite.read:busy@0.3;cache.sqlite.write:busy@0.3",
        )
        monkeypatch.setenv("REPRO_FAULTS_SEED", faults_seed)
        faults.reset()
        try:
            stats = RunStats()
            survived = comparable(
                simulate(
                    big_trace,
                    fleet,
                    cache=cache,
                    activity_cache=activity_cache,
                    stats=stats,
                    estimation_overrides=QUIET,
                )
            )
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            monkeypatch.delenv("REPRO_FAULTS_SEED")
            faults.reset()
        assert survived == reference
        # Faults degrade the disk tier, never the collapse: still one
        # engine run per used workload.
        assert stats.executed == len(big_trace.used_workloads())


class TestServeReplay:
    def test_replay_coalesces_and_moves_cache_counters(self, fresh_default_caches):
        from repro.serve import EstimationService, replay_trace

        store = fresh_default_caches
        workloads = {
            "w1": WorkloadSpec(matrix_size=128, iterations=200),
            "w2": WorkloadSpec(dtype="fp32", matrix_size=128, iterations=200),
        }
        jobs = tuple(
            TraceJob(arrival_tick=t, tenant="t", workload=w)
            for t in range(4)
            for w in ("w1", "w2")
        )
        trace = Trace(name="serve-replay", tick_s=1.0, workloads=workloads, jobs=jobs)

        async def scenario():
            service = EstimationService()
            try:
                return await replay_trace(
                    service, trace, estimation_overrides=QUIET
                )
            finally:
                await service.close()

        report = asyncio.run(scenario())
        assert report.requests == 8
        assert report.distinct_configs == 2
        # 8 concurrent requests over 2 distinct configs: at least one
        # duplicate joined an in-flight computation.
        assert report.coalesced >= 1
        assert set(report.results) == {"w1", "w2"}
        tiers = store.peek_default_caches()
        assert tiers["experiment"].stats.puts >= 2
        assert tiers["activity"].stats.puts >= 2

    def test_replay_respects_limit_and_empty_trace(self, fresh_default_caches):
        from repro.serve import EstimationService, replay_trace

        workloads = {"w1": WorkloadSpec(matrix_size=128, iterations=200)}
        jobs = tuple(
            TraceJob(arrival_tick=t, tenant="t", workload="w1") for t in range(5)
        )
        trace = Trace(name="limited", tick_s=1.0, workloads=workloads, jobs=jobs)
        empty = Trace(name="empty", tick_s=1.0, workloads=workloads, jobs=())

        async def scenario():
            service = EstimationService()
            try:
                limited = await replay_trace(
                    service, trace, limit=2, estimation_overrides=QUIET
                )
                nothing = await replay_trace(service, empty)
            finally:
                await service.close()
            return limited, nothing

        limited, nothing = asyncio.run(scenario())
        assert limited.requests == 2
        assert nothing.requests == 0
        assert nothing.results == {}
