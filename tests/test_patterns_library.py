"""Unit tests for the pattern-family registry (repro.patterns.library)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PatternError
from repro.patterns.library import (
    PATTERN_FAMILIES,
    build_pattern,
    list_patterns,
    paper_base_pattern,
)
from repro.util.rng import derive_rng


class TestRegistry:
    def test_all_paper_families_present(self):
        names = list_patterns()
        for family in (
            "gaussian",
            "value_set",
            "constant_random",
            "bit_flip",
            "randomize_lsb",
            "randomize_msb",
            "sorted_rows",
            "sorted_columns",
            "sorted_within_rows",
            "sparsity",
            "sorted_sparsity",
            "zero_lsb",
            "zero_msb",
        ):
            assert family in names

    def test_list_matches_mapping(self):
        assert set(list_patterns()) == set(PATTERN_FAMILIES)

    def test_unknown_family_raises(self):
        with pytest.raises(PatternError):
            build_pattern("nonexistent", "fp16")

    def test_invalid_parameters_raise_pattern_error(self):
        with pytest.raises(PatternError):
            build_pattern("gaussian", "fp16", bogus_param=3)


class TestPaperBasePattern:
    def test_fp_scale(self):
        pattern = paper_base_pattern("fp16")
        assert pattern.std == pytest.approx(210.0)

    def test_int8_scale(self):
        pattern = paper_base_pattern("int8")
        assert pattern.std == pytest.approx(25.0)


class TestBuiltPatternBehaviour:
    @pytest.mark.parametrize("family", sorted(PATTERN_FAMILIES))
    def test_every_family_generates_representable_values(self, family):
        from repro.dtypes import get_dtype

        spec = get_dtype("fp16")
        pattern = build_pattern(family, spec)
        values = pattern.generate((16, 16), spec, derive_rng(0, family))
        assert values.shape == (16, 16)
        finite = values[np.isfinite(values)]
        np.testing.assert_array_equal(spec.quantize(finite), finite)

    def test_sparsity_parameter_applied(self):
        pattern = build_pattern("sparsity", "fp16", sparsity=0.75)
        values = pattern.generate((32, 32), "fp16", derive_rng(1))
        assert (values == 0).mean() == pytest.approx(0.75, abs=0.05)

    def test_sorted_sparsity_composes_sort_then_zeros(self):
        pattern = build_pattern("sorted_sparsity", "fp16", sparsity=0.3)
        values = pattern.generate((32, 32), "fp16", derive_rng(2))
        nonzero = values[values != 0]
        assert (values == 0).mean() == pytest.approx(0.3, abs=0.05)
        assert nonzero.size > 0

    def test_sorted_rows_full_sort(self):
        pattern = build_pattern("sorted_rows", "fp16", fraction=1.0)
        values = pattern.generate((16, 16), "fp16", derive_rng(3))
        assert np.all(np.diff(values.reshape(-1)) >= 0)

    def test_value_set_size_respected(self):
        pattern = build_pattern("value_set", "fp16", set_size=8)
        values = pattern.generate((32, 32), "fp16", derive_rng(4))
        assert len(np.unique(values)) <= 8

    def test_structured_sparsity_family(self):
        pattern = build_pattern("structured_sparsity", "fp16", n=2, m=4)
        values = pattern.generate((16, 16), "fp16", derive_rng(5))
        assert (values != 0).mean() == pytest.approx(0.5, abs=0.01)

    def test_constant_family_value(self):
        pattern = build_pattern("constant", "fp32", value=2.5)
        values = pattern.generate((4, 4), "fp32", derive_rng(6))
        assert np.all(values == 2.5)

    def test_zero_msb_reduces_magnitude(self):
        base = build_pattern("gaussian", "fp16")
        zeroed = build_pattern("zero_msb", "fp16", fraction=0.25)
        rng_a, rng_b = derive_rng(7, "a"), derive_rng(7, "a")
        base_values = base.generate((32, 32), "fp16", rng_a)
        zero_values = zeroed.generate((32, 32), "fp16", rng_b)
        assert np.abs(zero_values).max() <= np.abs(base_values).max()
