"""Unit tests for repro.patterns.placement (sorting transforms)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtypes import get_dtype
from repro.errors import PatternError
from repro.patterns.placement import (
    PartialSortTransform,
    sort_columns,
    sort_rows,
    sort_within_rows,
)


@pytest.fixture
def matrix(rng):
    return rng.normal(0, 210.0, size=(16, 16))


class TestSortRows:
    def test_full_sort_is_globally_sorted_row_major(self, matrix):
        out = sort_rows(matrix, 1.0)
        flat = out.reshape(-1)
        assert np.all(np.diff(flat) >= 0)

    def test_zero_fraction_is_identity(self, matrix):
        np.testing.assert_array_equal(sort_rows(matrix, 0.0), matrix)

    def test_multiset_preserved(self, matrix):
        out = sort_rows(matrix, 0.6)
        np.testing.assert_allclose(np.sort(out.reshape(-1)), np.sort(matrix.reshape(-1)))

    def test_partial_sort_places_lowest_values_first(self, matrix):
        fraction = 0.25
        out = sort_rows(matrix, fraction)
        k = int(round(fraction * matrix.size))
        sorted_all = np.sort(matrix.reshape(-1))
        np.testing.assert_allclose(out.reshape(-1)[:k], sorted_all[:k])

    def test_partial_sort_keeps_rest_in_original_order(self, matrix):
        fraction = 0.25
        out = sort_rows(matrix, fraction)
        k = int(round(fraction * matrix.size))
        flat = matrix.reshape(-1)
        lowest = set(np.argsort(flat, kind="stable")[:k].tolist())
        remaining_original = flat[[i for i in range(flat.size) if i not in lowest]]
        np.testing.assert_allclose(out.reshape(-1)[k:], remaining_original)

    def test_invalid_fraction(self, matrix):
        with pytest.raises(PatternError):
            sort_rows(matrix, 1.5)


class TestSortColumns:
    def test_full_sort_is_globally_sorted_column_major(self, matrix):
        out = sort_columns(matrix, 1.0)
        flat = out.reshape(-1, order="F")
        assert np.all(np.diff(flat) >= 0)

    def test_multiset_preserved(self, matrix):
        out = sort_columns(matrix, 0.5)
        np.testing.assert_allclose(np.sort(out.reshape(-1)), np.sort(matrix.reshape(-1)))

    def test_differs_from_row_sort(self, matrix):
        assert not np.array_equal(sort_columns(matrix, 1.0), sort_rows(matrix, 1.0))


class TestSortWithinRows:
    def test_full_sort_sorts_each_row(self, matrix):
        out = sort_within_rows(matrix, 1.0)
        assert np.all(np.diff(out, axis=1) >= 0)

    def test_rows_keep_their_own_values(self, matrix):
        out = sort_within_rows(matrix, 1.0)
        for i in range(matrix.shape[0]):
            np.testing.assert_allclose(np.sort(out[i]), np.sort(matrix[i]))

    def test_partial_sort_prefix_of_each_row(self, matrix):
        fraction = 0.5
        out = sort_within_rows(matrix, fraction)
        k = int(round(fraction * matrix.shape[1]))
        for i in range(matrix.shape[0]):
            np.testing.assert_allclose(out[i, :k], np.sort(matrix[i])[:k])


class TestPartialSortTransform:
    def test_modes(self, matrix, rng):
        spec = get_dtype("fp32")
        for mode in ("rows", "columns", "within_rows"):
            out = PartialSortTransform(1.0, mode=mode).apply(matrix, spec, rng)
            assert out.shape == matrix.shape

    def test_invalid_mode(self):
        with pytest.raises(PatternError):
            PartialSortTransform(0.5, mode="diagonal")

    def test_invalid_fraction(self):
        with pytest.raises(PatternError):
            PartialSortTransform(-0.1)

    def test_quantized_values_stay_representable(self, rng):
        spec = get_dtype("fp16")
        values = spec.quantize(rng.normal(0, 210, size=(12, 12)))
        out = PartialSortTransform(1.0, mode="rows").apply(values, spec, rng)
        np.testing.assert_array_equal(spec.quantize(out), out)

    def test_describe(self):
        desc = PartialSortTransform(0.75, mode="columns").describe()
        assert desc == {"name": "partial_sort", "mode": "columns", "fraction": 0.75}

    def test_sorting_reduces_row_adjacent_differences(self, matrix):
        original_diff = np.abs(np.diff(matrix.reshape(-1))).mean()
        sorted_diff = np.abs(np.diff(sort_rows(matrix, 1.0).reshape(-1))).mean()
        assert sorted_diff < original_diff
