"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dtypes import get_dtype
from repro.patterns.bitsim import RandomBitFlipTransform, RandomizeLowBitsTransform
from repro.patterns.placement import sort_columns, sort_rows, sort_within_rows
from repro.patterns.sparsity import SparsityTransform
from repro.util.bits import (
    bit_alignment,
    hamming_distance,
    popcount,
    toggle_fraction,
    toggle_fraction_along_axis,
)
from repro.util.rng import derive_rng, derive_seed
from repro.util.stats import summarize

# Shared strategies -----------------------------------------------------------

uint16_arrays = hnp.arrays(
    dtype=np.uint16,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=24),
    elements=st.integers(min_value=0, max_value=0xFFFF),
)

small_floats = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(4, 16), st.integers(4, 16)),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=32),
)


class TestBitProperties:
    @given(uint16_arrays)
    @settings(max_examples=60, deadline=None)
    def test_popcount_bounds(self, words):
        counts = popcount(words)
        assert np.all(counts >= 0)
        assert np.all(counts <= 16)

    @given(uint16_arrays)
    @settings(max_examples=60, deadline=None)
    def test_hamming_distance_to_self_is_zero(self, words):
        assert np.all(hamming_distance(words, words) == 0)

    @given(uint16_arrays, st.integers(0, 0xFFFF))
    @settings(max_examples=60, deadline=None)
    def test_hamming_distance_symmetry(self, words, xor_value):
        other = np.bitwise_xor(words, np.uint16(xor_value))
        np.testing.assert_array_equal(
            hamming_distance(words, other), hamming_distance(other, words)
        )

    @given(uint16_arrays, st.integers(0, 0xFFFF))
    @settings(max_examples=60, deadline=None)
    def test_toggle_fraction_in_unit_interval(self, words, xor_value):
        other = np.bitwise_xor(words, np.uint16(xor_value))
        fraction = toggle_fraction(words, other)
        assert 0.0 <= fraction <= 1.0

    @given(uint16_arrays)
    @settings(max_examples=60, deadline=None)
    def test_alignment_complement_relation(self, words):
        complement = np.bitwise_xor(words, np.uint16(0xFFFF))
        assert bit_alignment(words, complement) == pytest.approx(0.0, abs=1e-12)
        assert bit_alignment(words, words) == pytest.approx(1.0)

    @given(
        hnp.arrays(
            dtype=np.uint16,
            shape=st.tuples(st.integers(2, 10), st.integers(2, 10)),
            elements=st.integers(0, 0xFFFF),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_stream_toggle_bounded(self, words):
        for axis in (0, 1):
            assert 0.0 <= toggle_fraction_along_axis(words, axis) <= 1.0


class TestDTypeProperties:
    @given(small_floats, st.sampled_from(["fp32", "fp16", "fp16_t", "bf16"]))
    @settings(max_examples=50, deadline=None)
    def test_quantization_idempotent(self, values, dtype_name):
        spec = get_dtype(dtype_name)
        once = spec.quantize(values)
        twice = spec.quantize(once)
        np.testing.assert_array_equal(once, twice)

    @given(small_floats)
    @settings(max_examples=50, deadline=None)
    def test_fp32_quantization_is_close(self, values):
        quantized = get_dtype("fp32").quantize(values)
        np.testing.assert_allclose(quantized, values, rtol=1e-6, atol=1e-30)

    @given(small_floats, st.sampled_from(["int8", "int32"]))
    @settings(max_examples=50, deadline=None)
    def test_integer_quantization_in_range(self, values, dtype_name):
        spec = get_dtype(dtype_name)
        quantized = spec.quantize(values)
        low, high = spec.representable_range
        assert quantized.min() >= low
        assert quantized.max() <= high
        np.testing.assert_array_equal(quantized, np.rint(quantized))

    @given(small_floats, st.sampled_from(["fp32", "fp16", "bf16", "int8"]))
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_consistency(self, values, dtype_name):
        spec = get_dtype(dtype_name)
        words = spec.encode(values)
        np.testing.assert_array_equal(spec.decode(words), spec.quantize(values))


class TestPatternProperties:
    @given(small_floats, st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_sorting_preserves_multiset(self, values, fraction):
        for sorter in (sort_rows, sort_columns, sort_within_rows):
            sorted_values = sorter(values, fraction)
            np.testing.assert_allclose(
                np.sort(sorted_values.reshape(-1)), np.sort(values.reshape(-1))
            )

    @given(small_floats, st.floats(0.0, 1.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_sparsity_fraction_matches_request(self, values, sparsity, seed):
        # Ensure no accidental zeros in the input so the count is exact.
        values = np.where(values == 0.0, 1.0, values)
        transform = SparsityTransform(sparsity)
        out = transform.apply(values, get_dtype("fp32"), derive_rng(seed))
        expected = int(round(sparsity * values.size))
        assert int((out == 0).sum()) == expected

    @given(st.floats(0.0, 1.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_bit_flip_output_representable(self, probability, seed):
        spec = get_dtype("fp16")
        values = np.full((12, 12), 37.5)
        out = RandomBitFlipTransform(probability).apply(values, spec, derive_rng(seed))
        np.testing.assert_array_equal(spec.quantize(out), out)

    @given(st.integers(0, 16), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_randomize_lsb_count_limits_changed_bits(self, count, seed):
        spec = get_dtype("fp16")
        values = np.full((8, 8), 91.0)
        out = RandomizeLowBitsTransform(count=count).apply(values, spec, derive_rng(seed))
        changed = np.bitwise_xor(spec.encode(values), spec.encode(out))
        if count == 0:
            assert int(changed.max()) == 0
        else:
            assert int(np.bitwise_or.reduce(changed.reshape(-1))) < (1 << count)


class TestRngAndStatsProperties:
    @given(st.integers(0, 2**40), st.lists(st.text(max_size=8), max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_derive_seed_stable_and_bounded(self, base, keys):
        first = derive_seed(base, *keys)
        second = derive_seed(base, *keys)
        assert first == second
        assert 0 <= first < 2**63

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_summary_bounds(self, values):
        summary = summarize(values)
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.std >= 0.0
        assert summary.count == len(values)
