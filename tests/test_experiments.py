"""Unit and integration tests for repro.experiments (config, harness, sweeps, results)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import PAPER_ITERATIONS, PAPER_MATRIX_SIZE, PAPER_SEEDS, ExperimentConfig
from repro.experiments.harness import ExperimentRunner, run_experiment
from repro.experiments.results import ExperimentResult, FigureResult, SweepResult
from repro.experiments.sweep import run_configs, run_sweep, sweep_configs


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.pattern_family == "gaussian"
        assert config.dtype == "fp16_t"

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(pattern_family="bogus")

    def test_unknown_dtype_rejected(self):
        with pytest.raises(Exception):
            ExperimentConfig(dtype="fp9")

    def test_unknown_gpu_rejected(self):
        with pytest.raises(Exception):
            ExperimentConfig(gpu="tpu")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(matrix_size=4)
        with pytest.raises(ExperimentError):
            ExperimentConfig(seeds=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(iterations=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(warmup_trim_s=-1.0)

    def test_with_overrides_does_not_mutate(self):
        base = ExperimentConfig()
        other = base.with_overrides(dtype="fp32")
        assert base.dtype == "fp16_t" and other.dtype == "fp32"

    def test_with_pattern(self):
        config = ExperimentConfig().with_pattern("sparsity", sparsity=0.5)
        assert config.pattern_family == "sparsity"
        assert config.pattern_params == {"sparsity": 0.5}

    def test_paper_defaults(self):
        config = ExperimentConfig.paper_defaults("fp16_t")
        assert config.matrix_size == PAPER_MATRIX_SIZE
        assert config.seeds == PAPER_SEEDS
        assert config.iterations == PAPER_ITERATIONS["fp16_t"]
        assert ExperimentConfig.paper_defaults("fp32").iterations == PAPER_ITERATIONS["default"]

    def test_describe_and_label(self):
        config = ExperimentConfig(pattern_family="sparsity", pattern_params={"sparsity": 0.5})
        desc = config.describe()
        assert desc["pattern_params"] == {"sparsity": 0.5}
        assert "sparsity" in config.default_label()


class TestHarness:
    def test_run_basic(self, quiet_config):
        result = run_experiment(quiet_config())
        assert isinstance(result, ExperimentResult)
        assert len(result.measurements) == 1
        assert result.mean_power_watts > 50.0
        assert result.mean_iteration_time_s > 0.0
        assert result.mean_iteration_energy_j > 0.0

    def test_seed_count_respected(self, quiet_config):
        result = run_experiment(quiet_config(seeds=3))
        assert len(result.measurements) == 3
        assert {m.seed for m in result.measurements} == {0, 1, 2}

    def test_deterministic_without_noise(self, quiet_config):
        config = quiet_config()
        # cache=None forces both runs through the harness; with the default
        # cache the second call would be a hit and prove nothing.
        one = run_experiment(config, cache=None)
        two = run_experiment(config, cache=None)
        assert one.mean_power_watts == pytest.approx(two.mean_power_watts)

    def test_a_and_b_use_different_seeds(self, quiet_config):
        # With a constant_random pattern A and B should get different values,
        # so the bit alignment between them must be below 1.
        result = run_experiment(quiet_config(pattern_family="constant_random"))
        assert result.mean_bit_alignment < 1.0

    def test_different_patterns_produce_different_power(self, quiet_config):
        dense = run_experiment(quiet_config())
        empty = run_experiment(
            quiet_config(pattern_family="sparsity", pattern_params={"sparsity": 1.0})
        )
        assert empty.mean_power_watts < dense.mean_power_watts

    def test_device_metadata_in_result(self, quiet_config):
        result = run_experiment(quiet_config(gpu="h100"))
        assert result.config["device"]["name"] == "h100"

    def test_runner_reuse(self, quiet_config):
        runner = ExperimentRunner(quiet_config())
        first = runner.run()
        second = runner.run()
        assert first.mean_power_watts == pytest.approx(second.mean_power_watts)

    def test_measurement_fields_serializable(self, quiet_config):
        result = run_experiment(quiet_config())
        as_json = json.dumps(result.as_dict())
        assert "power_watts" in as_json


class TestSweep:
    def test_sweep_configs_pattern_target(self, quiet_config):
        configs = sweep_configs(quiet_config(pattern_family="sparsity"), "sparsity", [0.0, 0.5])
        assert [c.pattern_params["sparsity"] for c in configs] == [0.0, 0.5]

    def test_sweep_configs_config_target(self, quiet_config):
        configs = sweep_configs(quiet_config(), "dtype", ["fp16", "int8"], target="config")
        assert [c.dtype for c in configs] == ["fp16", "int8"]

    def test_sweep_configs_invalid_target(self, quiet_config):
        with pytest.raises(ExperimentError):
            sweep_configs(quiet_config(), "dtype", ["fp16"], target="bogus")

    def test_sweep_configs_empty_values(self, quiet_config):
        with pytest.raises(ExperimentError):
            sweep_configs(quiet_config(), "sparsity", [])

    def test_run_sweep_returns_aligned_results(self, quiet_config):
        sweep = run_sweep(
            quiet_config(pattern_family="sparsity"), "sparsity", [0.0, 1.0], label="test sweep"
        )
        assert sweep.values == [0.0, 1.0]
        assert len(sweep.results) == 2
        assert sweep.powers()[1] < sweep.powers()[0]

    def test_run_configs_workers_serial_matches(self, quiet_config):
        configs = sweep_configs(quiet_config(pattern_family="sparsity"), "sparsity", [0.0, 1.0])
        serial = run_configs(configs, workers=1)
        assert len(serial) == 2

    def test_run_configs_invalid_workers(self, quiet_config):
        with pytest.raises(ExperimentError):
            run_configs([quiet_config()], workers=0)


class TestResultContainers:
    def test_sweep_result_validation(self, quiet_config):
        result = run_experiment(quiet_config())
        with pytest.raises(ExperimentError):
            SweepResult(parameter="x", values=[1, 2], results=[result])
        with pytest.raises(ExperimentError):
            SweepResult(parameter="x", values=[], results=[])

    def test_sweep_helpers(self, quiet_config):
        sweep = run_sweep(
            quiet_config(pattern_family="sparsity"), "sparsity", [0.0, 0.5, 1.0]
        )
        assert len(sweep.energies()) == 3
        assert len(sweep.runtimes()) == 3
        assert len(sweep.activity_factors()) == 3
        assert 0.0 <= sweep.power_range_fraction() < 1.0
        assert sweep.relative_powers()[0] == pytest.approx(1.0)

    def test_sweep_rendering(self, quiet_config):
        sweep = run_sweep(quiet_config(pattern_family="sparsity"), "sparsity", [0.0, 1.0])
        table = sweep.render_table()
        chart = sweep.render_chart()
        assert "power_W" in table
        assert "power_W" in chart

    def test_experiment_result_requires_measurements(self):
        with pytest.raises(ExperimentError):
            ExperimentResult(config={}, measurements=[])

    def test_figure_result_panels(self, quiet_config):
        sweep = run_sweep(quiet_config(pattern_family="sparsity"), "sparsity", [0.0, 1.0])
        figure = FigureResult(name="figX", description="test figure")
        figure.add_panel("panel", sweep)
        assert figure.panel("panel") is sweep
        with pytest.raises(ExperimentError):
            figure.add_panel("panel", sweep)
        with pytest.raises(ExperimentError):
            figure.panel("missing")
        rendered = figure.render()
        assert "figX" in rendered and "panel" in rendered

    def test_figure_result_save_json(self, quiet_config, tmp_path):
        sweep = run_sweep(quiet_config(pattern_family="sparsity"), "sparsity", [0.0])
        figure = FigureResult(name="figY", description="serialization test")
        figure.add_panel("only", sweep)
        path = figure.save_json(tmp_path / "figY.json")
        loaded = json.loads(path.read_text())
        assert loaded["name"] == "figY"
        assert "only" in loaded["panels"]
