"""Unit tests for the repro.activity package (switching-activity estimation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity.accumulator import estimate_datapath_activity
from repro.activity.engine import activity_from_matrices, estimate_activity
from repro.activity.memory_traffic import estimate_memory_activity
from repro.activity.multiplier import estimate_multiplier_activity
from repro.activity.operand_bus import estimate_operand_activity
from repro.activity.report import ActivityReport, COMPONENT_NAMES
from repro.activity.sampler import SamplingConfig
from repro.errors import ActivityError
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.kernels.schedule import build_streams


def _streams(a, b, dtype="fp16", transpose_b=True):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n, k = a.shape
    m = b.shape[0] if transpose_b else b.shape[1]
    problem = GemmProblem(n=n, m=m, k=k, dtype=dtype, transpose_b=transpose_b)
    return build_streams(GemmOperands(problem=problem, a=a, b_stored=b))


class TestSamplingConfig:
    def test_defaults_valid(self):
        config = SamplingConfig()
        assert config.output_samples >= 1

    def test_invalid_samples(self):
        with pytest.raises(ActivityError):
            SamplingConfig(output_samples=0)

    def test_invalid_max_k(self):
        with pytest.raises(ActivityError):
            SamplingConfig(max_k=1)

    def test_effective_k(self):
        assert SamplingConfig(max_k=32).effective_k(100) == 32
        assert SamplingConfig().effective_k(100) == 100


class TestOperandActivity:
    def test_constant_matrices_have_zero_toggle(self):
        streams = _streams(np.full((16, 16), 3.0), np.full((16, 16), 5.0))
        activity = estimate_operand_activity(streams)
        assert activity.toggle_a == 0.0
        assert activity.toggle_b == 0.0
        assert activity.activity == 0.0

    def test_random_matrices_near_one(self, gaussian_matrices):
        streams = _streams(*gaussian_matrices)
        activity = estimate_operand_activity(streams)
        assert 0.6 < activity.activity <= 1.1

    def test_sorted_lower_than_random(self, gaussian_matrices):
        a, b = gaussian_matrices
        random_activity = estimate_operand_activity(_streams(a, b)).activity
        sorted_activity = estimate_operand_activity(
            _streams(np.sort(a.reshape(-1)).reshape(a.shape), np.sort(b.reshape(-1)).reshape(b.shape))
        ).activity
        assert sorted_activity < random_activity


class TestMultiplierActivity:
    def test_zero_matrices(self):
        streams = _streams(np.zeros((8, 8)), np.zeros((8, 8)))
        activity = estimate_multiplier_activity(streams)
        assert activity.hw_product == 0.0
        assert activity.zero_mac_fraction == pytest.approx(1.0)
        assert activity.activity == pytest.approx(0.04, abs=0.01)

    def test_factorized_mean_matches_bruteforce(self, rng):
        # The factorized estimator must equal the brute-force mean over all MACs.
        from repro.dtypes import get_dtype
        from repro.util.bits import popcount

        a = rng.normal(0, 210, size=(6, 5))
        b = rng.normal(0, 210, size=(7, 5))  # stored transposed
        streams = _streams(a, b, dtype="fp16")
        activity = estimate_multiplier_activity(streams)

        spec = get_dtype("fp16")
        hw_a = popcount(spec.encode(streams.a_used)) / 16.0
        hw_b = popcount(spec.encode(streams.b_used)) / 16.0
        brute = np.mean(
            [
                hw_a[i, kk] * hw_b[kk, j]
                for i in range(6)
                for j in range(7)
                for kk in range(5)
            ]
        )
        assert activity.hw_product == pytest.approx(brute, rel=1e-12)

    def test_zero_mac_fraction_exact(self, rng):
        a = rng.normal(0, 210, size=(4, 8))
        b = rng.normal(0, 210, size=(4, 8))
        a[:, :4] = 0.0  # half of A's reduction slices are zero
        streams = _streams(a, b, dtype="fp16")
        activity = estimate_multiplier_activity(streams)
        assert activity.zero_mac_fraction == pytest.approx(0.5)

    def test_hamming_fractions_reported(self, gaussian_matrices):
        streams = _streams(*gaussian_matrices)
        activity = estimate_multiplier_activity(streams)
        assert 0.3 < activity.a_hamming_fraction < 0.7
        assert 0.3 < activity.b_hamming_fraction < 0.7


class TestDatapathActivity:
    def test_constant_inputs_low_product_toggle(self):
        streams = _streams(np.full((16, 16), 2.0), np.full((16, 16), 3.0))
        activity = estimate_datapath_activity(streams, SamplingConfig(output_samples=16))
        assert activity.product_toggle == 0.0

    def test_random_inputs_positive_toggles(self, gaussian_matrices):
        streams = _streams(*gaussian_matrices)
        activity = estimate_datapath_activity(streams, SamplingConfig(output_samples=32))
        assert activity.product_toggle > 0.2
        assert activity.accumulator_toggle > 0.1

    def test_alignment_of_identical_matrices_is_one(self):
        value = np.full((8, 8), 7.0)
        streams = _streams(value, value)
        activity = estimate_datapath_activity(streams, SamplingConfig(output_samples=8))
        assert activity.bit_alignment == pytest.approx(1.0)

    def test_output_samples_capped_by_space(self):
        streams = _streams(np.ones((4, 4)), np.ones((4, 4)))
        activity = estimate_datapath_activity(streams, SamplingConfig(output_samples=1000))
        assert activity.output_samples == 16

    def test_deterministic_given_seed(self, gaussian_matrices):
        streams = _streams(*gaussian_matrices)
        one = estimate_datapath_activity(streams, SamplingConfig(output_samples=32), seed=5)
        two = estimate_datapath_activity(streams, SamplingConfig(output_samples=32), seed=5)
        assert one.accumulator_toggle == two.accumulator_toggle


class TestMemoryActivity:
    def test_constant_matrix_zero(self):
        streams = _streams(np.full((8, 8), 1.5), np.full((8, 8), 2.5))
        assert estimate_memory_activity(streams).activity == 0.0

    def test_uses_storage_layout_for_b(self, rng):
        # B stored with constant rows (zero row-major toggle) but consumed
        # transposed; memory activity must see the *stored* layout.
        a = np.full((8, 8), 1.0)
        b_stored = np.tile(rng.normal(0, 210, size=(8, 1)), (1, 8))
        streams = _streams(a, b_stored, transpose_b=True)
        assert estimate_memory_activity(streams).toggle_b == 0.0


class TestEngine:
    def test_full_report_fields(self, gaussian_matrices):
        report = activity_from_matrices(*gaussian_matrices, dtype="fp16_t")
        assert isinstance(report, ActivityReport)
        assert report.dtype == "fp16_t"
        assert report.shape == (96, 96, 96)
        for name in COMPONENT_NAMES:
            assert report.component_activity(name) >= 0.0

    def test_accepts_operands_and_streams(self, gaussian_matrices):
        a, b = gaussian_matrices
        problem = GemmProblem(n=96, m=96, k=96, dtype="fp16")
        operands = GemmOperands(problem=problem, a=a, b_stored=b)
        from_operands = estimate_activity(operands)
        from_streams = estimate_activity(build_streams(operands))
        assert from_operands.multiplier_activity == pytest.approx(from_streams.multiplier_activity)

    def test_rejects_other_types(self):
        with pytest.raises(ActivityError):
            estimate_activity("not operands")

    def test_weighted_activity(self, gaussian_matrices):
        report = activity_from_matrices(*gaussian_matrices)
        weights = {"operand": 1.0, "multiplier": 0.0, "datapath": 0.0, "memory": 0.0}
        assert report.weighted_activity(weights) == pytest.approx(report.operand_activity)

    def test_weighted_activity_requires_positive_weights(self, gaussian_matrices):
        report = activity_from_matrices(*gaussian_matrices)
        with pytest.raises(ActivityError):
            report.weighted_activity({"operand": 0.0})

    def test_unknown_component_rejected(self, gaussian_matrices):
        report = activity_from_matrices(*gaussian_matrices)
        with pytest.raises(ActivityError):
            report.component_activity("alu")

    def test_as_dict_serializable(self, gaussian_matrices):
        import json

        report = activity_from_matrices(*gaussian_matrices)
        assert json.loads(json.dumps(report.as_dict()))["dtype"] == "fp16_t"

    def test_all_zero_input_gives_near_zero_activity(self):
        report = activity_from_matrices(np.zeros((32, 32)), np.zeros((32, 32)))
        for name in COMPONENT_NAMES:
            assert report.component_activity(name) <= 0.05

    def test_negative_activity_impossible(self, gaussian_matrices):
        report = activity_from_matrices(*gaussian_matrices)
        assert min(
            report.operand_activity,
            report.multiplier_activity,
            report.datapath_activity,
            report.memory_activity,
        ) >= 0.0


class TestActivityTrends:
    """Directional checks that mirror the paper's mechanisms at matrix level."""

    def test_sorting_reduces_weighted_activity(self, gaussian_matrices):
        a, b = gaussian_matrices
        weights = {"operand": 0.3, "multiplier": 0.22, "datapath": 0.28, "memory": 0.2}
        random_report = activity_from_matrices(a, b)
        sorted_report = activity_from_matrices(
            np.sort(a.reshape(-1)).reshape(a.shape),
            np.sort(b.reshape(-1)).reshape(b.shape),
        )
        assert sorted_report.weighted_activity(weights) < random_report.weighted_activity(weights)

    def test_sparsity_reduces_multiplier_activity(self, gaussian_matrices, rng):
        a, b = gaussian_matrices
        mask = rng.random(a.shape) < 0.5
        sparse_a = np.where(mask, 0.0, a)
        dense = activity_from_matrices(a, b).multiplier_activity
        sparse = activity_from_matrices(sparse_a, b).multiplier_activity
        assert sparse < dense

    def test_larger_mean_reduces_operand_activity(self, rng):
        low_mean = rng.normal(0.0, 1.0, size=(96, 96))
        high_mean = low_mean + 4096.0
        low = activity_from_matrices(low_mean, low_mean.copy(), dtype="fp16")
        high = activity_from_matrices(high_mean, high_mean.copy(), dtype="fp16")
        assert high.operand_activity < low.operand_activity

    def test_bit_alignment_higher_for_identical_fills(self):
        same_fill = activity_from_matrices(np.full((32, 32), 13.5), np.full((32, 32), 13.5))
        different_fill = activity_from_matrices(np.full((32, 32), 13.5), np.full((32, 32), -97.0))
        assert same_fill.bit_alignment == pytest.approx(1.0)
        assert different_fill.bit_alignment < same_fill.bit_alignment
