"""Unit tests for the repro.optimize package (§V power-aware optimizations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.gpu.device import Device
from repro.optimize.compiler import GemmOp, Pipeline, PowerAwareCompiler
from repro.optimize.estimation import quick_power_estimate
from repro.optimize.permutation import (
    column_toggle_cost,
    greedy_low_toggle_permutation,
    permutation_by_column_norm,
    permute_columns,
    restore_columns,
)
from repro.optimize.power_capping import find_sparsity_for_cap
from repro.optimize.scheduler import FleetScheduler, GemmJob
from repro.optimize.sparsity_design import design_sparsity, magnitude_prune, structured_prune
from repro.optimize.weight_shift import candidate_shifts, shift_weights_for_power


@pytest.fixture
def activations(rng):
    return rng.normal(0.0, 1.0, size=(128, 128))


@pytest.fixture
def weights(rng):
    return rng.normal(0.0, 0.05, size=(128, 128))


class TestQuickEstimate:
    def test_fields_and_ranges(self, activations, weights):
        estimate = quick_power_estimate(activations, weights, dtype="fp16_t", gpu="a100")
        assert estimate.power_watts > 50.0
        assert estimate.iteration_time_s > 0
        assert estimate.iteration_energy_j == pytest.approx(
            estimate.power_watts * estimate.iteration_time_s
        )
        assert 0.0 <= estimate.activity_factor <= 1.15

    def test_accepts_device_instance(self, activations, weights):
        device = Device.create("h100")
        estimate = quick_power_estimate(activations, weights, gpu=device)
        assert estimate.power_watts > 60.0

    def test_deterministic(self, activations, weights):
        one = quick_power_estimate(activations, weights)
        two = quick_power_estimate(activations, weights)
        assert one.power_watts == pytest.approx(two.power_watts)

    def test_zero_weights_lower_power(self, activations, weights):
        dense = quick_power_estimate(activations, weights)
        empty = quick_power_estimate(activations, np.zeros_like(weights))
        assert empty.power_watts < dense.power_watts


class TestWeightShift:
    def test_candidate_shifts_positive_increasing(self, weights):
        shifts = candidate_shifts(weights, count=4)
        assert len(shifts) == 4
        assert all(s > 0 for s in shifts)
        assert shifts == sorted(shifts)

    def test_candidate_shifts_invalid_count(self, weights):
        with pytest.raises(OptimizationError):
            candidate_shifts(weights, count=0)

    def test_shift_reduces_power(self, activations, weights):
        result = shift_weights_for_power(activations, weights, dtype="fp16_t")
        assert result.shifted.power_watts <= result.baseline.power_watts
        assert result.power_reduction_fraction >= 0.0

    def test_error_budget_respected(self, activations, weights):
        from repro.dtypes import get_dtype

        result = shift_weights_for_power(
            activations, weights, dtype="fp16_t", max_relative_error=0.02
        )
        recovered = get_dtype("fp16_t").quantize(result.shifted_weights) - result.shift
        error = np.linalg.norm(recovered - weights) / np.linalg.norm(weights)
        assert error <= 0.02 + 1e-9

    def test_impossible_budget_returns_identity(self, activations, weights):
        result = shift_weights_for_power(
            activations, weights, shifts=[1e30], max_relative_error=1e-9
        )
        assert result.shift == 0.0
        assert result.power_reduction_watts == 0.0


class TestPermutation:
    def test_norm_permutation_is_valid(self, weights):
        perm = permutation_by_column_norm(weights)
        assert sorted(perm.tolist()) == list(range(weights.shape[1]))

    def test_greedy_permutation_is_valid(self, weights):
        perm = greedy_low_toggle_permutation(weights, dtype="fp16_t", sample_rows=16)
        assert sorted(perm.tolist()) == list(range(weights.shape[1]))

    def test_greedy_reduces_column_toggle_cost(self, weights):
        perm = greedy_low_toggle_permutation(weights, dtype="fp16_t", sample_rows=32)
        before = column_toggle_cost(weights, "fp16_t", sample_rows=32)
        after = column_toggle_cost(permute_columns(weights, perm), "fp16_t", sample_rows=32)
        assert after <= before

    def test_permute_restore_round_trip(self, weights):
        perm = permutation_by_column_norm(weights)
        np.testing.assert_array_equal(restore_columns(permute_columns(weights, perm), perm), weights)

    def test_computational_equivalence(self, activations, weights):
        perm = greedy_low_toggle_permutation(weights, dtype="fp16_t", sample_rows=16)
        direct = activations @ weights
        permuted = restore_columns(activations @ permute_columns(weights, perm), perm)
        np.testing.assert_allclose(direct, permuted, rtol=1e-12)

    def test_invalid_permutation_rejected(self, weights):
        with pytest.raises(OptimizationError):
            permute_columns(weights, np.zeros(weights.shape[1], dtype=np.int64))

    def test_non_2d_rejected(self):
        with pytest.raises(OptimizationError):
            permutation_by_column_norm(np.ones(5))
        with pytest.raises(OptimizationError):
            greedy_low_toggle_permutation(np.ones(5))

    def test_invalid_sample_rows(self, weights):
        with pytest.raises(OptimizationError):
            greedy_low_toggle_permutation(weights, sample_rows=0)


class TestSparsityDesign:
    def test_magnitude_prune_exact_count(self, weights):
        mask = magnitude_prune(weights, 0.25)
        assert (~mask).sum() == int(round(0.25 * weights.size))

    def test_magnitude_prune_keeps_largest(self):
        values = np.array([[0.1, -5.0, 0.2, 3.0]])
        mask = magnitude_prune(values, 0.5)
        np.testing.assert_array_equal(mask, [[False, True, False, True]])

    def test_magnitude_prune_extremes(self, weights):
        assert magnitude_prune(weights, 0.0).all()
        assert not magnitude_prune(weights, 1.0).any()

    def test_magnitude_prune_invalid(self, weights):
        with pytest.raises(OptimizationError):
            magnitude_prune(weights, 1.5)

    def test_structured_prune_2_4(self, weights):
        mask = structured_prune(weights, 2, 4)
        assert mask.mean() == pytest.approx(0.5)
        groups = mask.reshape(weights.shape[0], -1, 4)
        assert np.all(groups.sum(axis=-1) == 2)

    def test_structured_prune_invalid(self, weights):
        with pytest.raises(OptimizationError):
            structured_prune(weights, 5, 4)
        with pytest.raises(OptimizationError):
            structured_prune(np.ones((2, 6)), 2, 4)

    def test_design_reduces_power_and_reports_error(self, activations, weights):
        design = design_sparsity(activations, weights, sparsity=0.6)
        assert design.pruned.power_watts <= design.baseline.power_watts
        assert design.achieved_sparsity == pytest.approx(0.6, abs=0.01)
        assert 0.0 < design.relative_error < 1.0

    def test_structured_design(self, activations, weights):
        design = design_sparsity(activations, weights, sparsity=0.5, structured=(2, 4))
        assert design.achieved_sparsity == pytest.approx(0.5)
        assert design.structured == (2, 4)


class TestPowerCapping:
    def test_cap_above_baseline_needs_no_pruning(self, activations, weights):
        baseline = quick_power_estimate(activations, weights).power_watts
        plan = find_sparsity_for_cap(activations, weights, power_cap_watts=baseline + 10.0)
        assert plan.feasible and plan.sparsity == 0.0

    def test_cap_below_baseline_finds_sparsity(self, activations, weights):
        baseline = quick_power_estimate(activations, weights).power_watts
        floor = quick_power_estimate(activations, np.zeros_like(weights)).power_watts
        cap = floor + 0.5 * (baseline - floor)  # between fully-pruned and baseline power
        plan = find_sparsity_for_cap(activations, weights, power_cap_watts=cap)
        assert plan.feasible
        assert 0.0 < plan.sparsity <= 0.95
        assert plan.capped.power_watts <= plan.power_cap_watts + 1e-6
        assert plan.power_margin_watts >= 0.0

    def test_infeasible_cap_reported(self, activations, weights):
        plan = find_sparsity_for_cap(activations, weights, power_cap_watts=10.0)
        assert not plan.feasible
        assert plan.capped.power_watts > plan.power_cap_watts

    def test_invalid_cap(self, activations, weights):
        with pytest.raises(OptimizationError):
            find_sparsity_for_cap(activations, weights, power_cap_watts=0.0)


class TestCompiler:
    def test_op_validation(self, activations, weights):
        with pytest.raises(OptimizationError):
            GemmOp("bad", activations, weights[:, :64])
        with pytest.raises(OptimizationError):
            GemmOp("bad", activations, weights, allowed_transforms=("fuse",))

    def test_compile_empty_pipeline_rejected(self):
        with pytest.raises(OptimizationError):
            PowerAwareCompiler().compile(Pipeline())

    def test_permutation_only_op_stays_exact(self, activations, weights):
        op = GemmOp("layer0", activations, weights, allowed_transforms=("permute_columns",))
        compiled = PowerAwareCompiler("a100").compile_op(op)
        assert compiled.exact
        assert compiled.optimized.power_watts <= compiled.baseline.power_watts

    def test_pipeline_report_aggregates(self, activations, weights):
        pipeline = Pipeline()
        pipeline.add(GemmOp("l0", activations, weights, allowed_transforms=("permute_columns",)))
        pipeline.add(
            GemmOp("l1", activations, weights, allowed_transforms=("permute_columns", "prune"))
        )
        report = PowerAwareCompiler("a100").compile(pipeline)
        assert len(report.ops) == 2
        assert report.optimized_energy_j <= report.baseline_energy_j
        assert 0.0 <= report.energy_reduction_fraction < 1.0
        assert report.mean_power_reduction_watts >= 0.0


class TestScheduler:
    def _jobs(self, activations, weights, count=4):
        return [GemmJob(f"job{i}", activations, weights) for i in range(count)]

    def test_schedule_respects_budget(self, activations, weights):
        devices = [Device.create("a100", instance_id=i) for i in range(2)]
        single = quick_power_estimate(activations, weights, gpu=devices[0]).power_watts
        scheduler = FleetScheduler(devices, power_budget_watts=single * 1.5)
        schedule = scheduler.schedule(self._jobs(activations, weights))
        assert schedule.within_budget
        assert schedule.num_slots >= 2  # budget fits only one job per slot
        assert len(schedule.placements) == 4

    def test_larger_budget_fewer_slots(self, activations, weights):
        devices = [Device.create("a100", instance_id=i) for i in range(2)]
        single = quick_power_estimate(activations, weights, gpu=devices[0]).power_watts
        tight = FleetScheduler(devices, power_budget_watts=single * 1.5).schedule(
            self._jobs(activations, weights)
        )
        loose = FleetScheduler(devices, power_budget_watts=single * 4).schedule(
            self._jobs(activations, weights)
        )
        assert loose.num_slots <= tight.num_slots

    def test_one_job_per_device_per_slot(self, activations, weights):
        devices = [Device.create("a100")]
        single = quick_power_estimate(activations, weights, gpu=devices[0]).power_watts
        schedule = FleetScheduler(devices, power_budget_watts=single * 10).schedule(
            self._jobs(activations, weights, count=3)
        )
        for slot in range(schedule.num_slots):
            jobs = schedule.jobs_in_slot(slot)
            assert len({j.device_index for j in jobs}) == len(jobs)

    def test_budget_too_small_rejected(self, activations, weights):
        devices = [Device.create("a100")]
        with pytest.raises(OptimizationError):
            FleetScheduler(devices, power_budget_watts=20.0).schedule(
                self._jobs(activations, weights, count=1)
            )

    def test_invalid_construction(self):
        with pytest.raises(OptimizationError):
            FleetScheduler([], power_budget_watts=100.0)
        with pytest.raises(OptimizationError):
            FleetScheduler([Device.create("a100")], power_budget_watts=0.0)

    def test_empty_jobs_rejected(self):
        scheduler = FleetScheduler([Device.create("a100")], power_budget_watts=500.0)
        with pytest.raises(OptimizationError):
            scheduler.schedule([])

    def test_summary_keys(self, activations, weights):
        devices = [Device.create("a100")]
        scheduler = FleetScheduler(devices, power_budget_watts=500.0)
        schedule = scheduler.schedule(self._jobs(activations, weights, count=2))
        summary = scheduler.schedule_summary(schedule)
        assert {"num_slots", "peak_power_watts", "within_budget"}.issubset(summary)
