"""Unit tests for repro.util.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import rng as rng_mod


class TestDeriveSeed:
    def test_deterministic(self):
        assert rng_mod.derive_seed(42, "a", 1) == rng_mod.derive_seed(42, "a", 1)

    def test_different_keys_differ(self):
        assert rng_mod.derive_seed(42, "a") != rng_mod.derive_seed(42, "b")

    def test_different_base_seeds_differ(self):
        assert rng_mod.derive_seed(1, "x") != rng_mod.derive_seed(2, "x")

    def test_key_order_matters(self):
        assert rng_mod.derive_seed(0, "a", "b") != rng_mod.derive_seed(0, "b", "a")

    def test_seed_fits_in_63_bits(self):
        for base in (0, 1, 2**40, -5):
            seed = rng_mod.derive_seed(base, "k")
            assert 0 <= seed < 2**63


class TestDeriveRng:
    def test_reproducible_stream(self):
        a = rng_mod.derive_rng(7, "stream").normal(size=5)
        b = rng_mod.derive_rng(7, "stream").normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_independent_streams(self):
        a = rng_mod.derive_rng(7, "one").normal(size=5)
        b = rng_mod.derive_rng(7, "two").normal(size=5)
        assert not np.allclose(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(rng_mod.spawn_rngs(3, 4)) == 4

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            rng_mod.spawn_rngs(3, -1)

    def test_streams_differ(self):
        gens = rng_mod.spawn_rngs(3, 3, "group")
        draws = [g.integers(0, 2**31) for g in gens]
        assert len(set(draws)) == 3


class TestSamplingHelpers:
    def test_shuffled_indices_is_permutation(self):
        gen = np.random.default_rng(0)
        indices = rng_mod.shuffled_indices(gen, 10)
        assert sorted(indices.tolist()) == list(range(10))

    def test_sample_without_replacement_distinct(self):
        gen = np.random.default_rng(0)
        sample = rng_mod.sample_without_replacement(gen, 100, 20)
        assert len(set(sample.tolist())) == 20

    def test_sample_larger_than_population(self):
        gen = np.random.default_rng(0)
        sample = rng_mod.sample_without_replacement(gen, 5, 50)
        assert sorted(sample.tolist()) == list(range(5))

    def test_iter_seeds_unique(self):
        seeds = list(rng_mod.iter_seeds(11, 8))
        assert len(set(seeds)) == 8

    def test_as_seed_sequence_reproducible(self):
        a = rng_mod.as_seed_sequence(5, ("x",)).entropy
        b = rng_mod.as_seed_sequence(5, ("x",)).entropy
        assert a == b
