"""Unit tests for repro.gpu.memory, repro.gpu.sm, repro.gpu.tensor_core, repro.gpu.device."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.gpu.device import Device
from repro.gpu.memory import MemoryHierarchy, gemm_dram_traffic_bytes
from repro.gpu.sm import SMResources
from repro.gpu.specs import get_gpu_spec
from repro.gpu.tensor_core import TensorCoreConfig, default_mma_shape


class TestMemoryHierarchy:
    def test_from_spec(self):
        mem = MemoryHierarchy.from_spec(get_gpu_spec("a100"))
        assert mem.dram_bandwidth_bytes_per_s == pytest.approx(1935e9)
        assert mem.l2_capacity_bytes == pytest.approx(40 * 1024**2)

    def test_effective_bandwidth_below_peak(self):
        mem = MemoryHierarchy.from_spec(get_gpu_spec("a100"))
        assert mem.effective_bandwidth < mem.dram_bandwidth_bytes_per_s

    def test_transfer_time(self):
        mem = MemoryHierarchy.from_spec(get_gpu_spec("a100"))
        assert mem.transfer_time_s(mem.effective_bandwidth) == pytest.approx(1.0)

    def test_transfer_time_negative_rejected(self):
        mem = MemoryHierarchy.from_spec(get_gpu_spec("a100"))
        with pytest.raises(DeviceError):
            mem.transfer_time_s(-1.0)

    def test_fits_in_l2(self):
        mem = MemoryHierarchy.from_spec(get_gpu_spec("a100"))
        assert mem.fits_in_l2(1024)
        assert not mem.fits_in_l2(mem.l2_capacity_bytes + 1)


class TestGemmTraffic:
    def test_minimum_traffic_single_tile(self):
        # Whole problem fits in one tile: each operand read once, C read+written.
        traffic = gemm_dram_traffic_bytes(64, 64, 64, 2, tile_m=64, tile_n=64)
        expected = 2 * (64 * 64) * 2 + 2 * (64 * 64 * 2)
        assert traffic == pytest.approx(expected)

    def test_traffic_grows_with_more_tiles(self):
        small_tiles = gemm_dram_traffic_bytes(1024, 1024, 1024, 2, tile_m=64, tile_n=64)
        large_tiles = gemm_dram_traffic_bytes(1024, 1024, 1024, 2, tile_m=256, tile_n=256)
        assert small_tiles > large_tiles

    def test_l2_caching_reduces_traffic(self):
        without_l2 = gemm_dram_traffic_bytes(512, 512, 512, 2, tile_m=128, tile_n=128)
        with_l2 = gemm_dram_traffic_bytes(
            512, 512, 512, 2, tile_m=128, tile_n=128, l2_capacity_bytes=40 * 1024**2
        )
        assert with_l2 < without_l2

    def test_invalid_parameters(self):
        with pytest.raises(DeviceError):
            gemm_dram_traffic_bytes(0, 64, 64, 2, 64, 64)


class TestSMResources:
    def test_from_spec(self):
        sm = SMResources.from_spec(get_gpu_spec("a100"))
        assert sm.cuda_cores == 64
        assert sm.tensor_cores == 4

    def test_mac_lanes_packing(self):
        sm = SMResources.from_spec(get_gpu_spec("a100"))
        assert sm.mac_lanes(tensor_core=False, bits=32) == 64
        assert sm.mac_lanes(tensor_core=False, bits=16) == 128
        assert sm.mac_lanes(tensor_core=False, bits=8) == 256

    def test_tensor_core_lanes_exceed_cuda_lanes(self):
        sm = SMResources.from_spec(get_gpu_spec("a100"))
        assert sm.mac_lanes(tensor_core=True, bits=16) > sm.mac_lanes(tensor_core=False, bits=16)


class TestTensorCoreConfig:
    def test_default_shapes(self):
        fp16 = default_mma_shape("fp16_t")
        assert (fp16.mma_m, fp16.mma_n, fp16.mma_k) == (16, 8, 16)
        int8 = default_mma_shape("int8")
        assert int8.mma_k == 32

    def test_cuda_core_path_scalar_shape(self):
        scalar = default_mma_shape("fp32")
        assert scalar.macs_per_instruction == 1

    def test_fragments_per_gemm(self):
        config = TensorCoreConfig(mma_m=16, mma_n=8, mma_k=16)
        assert config.fragments_per_gemm(16, 8, 16) == 1
        assert config.fragments_per_gemm(32, 8, 16) == 2
        assert config.fragments_per_gemm(17, 8, 16) == 2

    def test_fragments_invalid_dims(self):
        with pytest.raises(DeviceError):
            TensorCoreConfig(16, 8, 16).fragments_per_gemm(0, 8, 16)


class TestDevice:
    def test_create_by_name(self):
        device = Device.create("a100")
        assert device.name == "a100"
        assert device.tdp_watts == 300.0
        assert device.idle_watts == pytest.approx(52.0)

    def test_peak_throughput_flops(self):
        device = Device.create("a100")
        assert device.peak_throughput_flops("fp16_t") == pytest.approx(312e12)

    def test_process_variation_deterministic_per_instance(self):
        a = Device.create("a100", instance_id=1)
        b = Device.create("a100", instance_id=1)
        c = Device.create("a100", instance_id=2)
        assert a.process_variation_watts() == b.process_variation_watts()
        assert a.process_variation_watts() != c.process_variation_watts()

    def test_process_variation_bounded(self):
        for instance in range(25):
            offset = Device.create("a100", instance_id=instance).process_variation_watts()
            assert abs(offset) <= 3.0 * get_gpu_spec("a100").process_variation_watts

    def test_supports_and_validate_dtype(self):
        device = Device.create("a100")
        assert device.supports_dtype("fp16_t")
        assert device.validate_dtype("FP16-T") == "fp16_t"
        with pytest.raises(Exception):
            device.validate_dtype("fp4")

    def test_describe_keys(self):
        desc = Device.create("h100").describe()
        for key in ("name", "architecture", "tdp_watts", "memory_type"):
            assert key in desc

    def test_mma_shape_lookup(self):
        device = Device.create("a100")
        assert device.mma_shape("fp16_t").mma_m == 16
        assert device.mma_shape("fp32").macs_per_instruction == 1
