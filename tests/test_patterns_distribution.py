"""Unit tests for repro.patterns.distribution and the pattern/transform base classes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtypes import get_dtype
from repro.errors import PatternError
from repro.patterns.base import Pattern, Transform, TransformedPattern
from repro.patterns.distribution import (
    ConstantPattern,
    ConstantRandomPattern,
    GaussianPattern,
    UniformPattern,
    ValueSetPattern,
)
from repro.patterns.sparsity import SparsityTransform
from repro.util.rng import derive_rng


class TestGaussianPattern:
    def test_shape_and_dtype(self, rng):
        values = GaussianPattern(0.0, 1.0).generate((8, 12), "fp32", rng)
        assert values.shape == (8, 12)
        assert values.dtype == np.float64

    def test_values_are_representable(self, rng):
        spec = get_dtype("fp16")
        values = GaussianPattern(0.0, 210.0).generate((32, 32), spec, rng)
        np.testing.assert_array_equal(spec.quantize(values), values)

    def test_mean_and_std_respected(self, rng):
        values = GaussianPattern(100.0, 5.0).generate((64, 64), "fp32", rng)
        assert values.mean() == pytest.approx(100.0, abs=1.0)
        assert values.std() == pytest.approx(5.0, abs=0.5)

    def test_reproducible_with_same_rng_seed(self):
        pattern = GaussianPattern(0.0, 1.0)
        a = pattern.generate((8, 8), "fp32", derive_rng(3, "x"))
        b = pattern.generate((8, 8), "fp32", derive_rng(3, "x"))
        np.testing.assert_array_equal(a, b)

    def test_int8_values_clipped_and_integral(self, rng):
        values = GaussianPattern(0.0, 100.0).generate((32, 32), "int8", rng)
        assert values.max() <= 127 and values.min() >= -128
        np.testing.assert_array_equal(values, np.rint(values))

    def test_negative_std_rejected(self):
        with pytest.raises(PatternError):
            GaussianPattern(0.0, -1.0)

    def test_describe(self):
        desc = GaussianPattern(1.0, 2.0).describe()
        assert desc == {"name": "gaussian", "mean": 1.0, "std": 2.0}


class TestValueSetPattern:
    def test_unique_value_count_bounded_by_set_size(self, rng):
        values = ValueSetPattern(set_size=4, std=210.0).generate((64, 64), "fp32", rng)
        assert len(np.unique(values)) <= 4

    def test_set_size_one_is_constant(self, rng):
        values = ValueSetPattern(set_size=1, std=210.0).generate((16, 16), "fp32", rng)
        assert len(np.unique(values)) == 1

    def test_large_set_has_many_values(self, rng):
        values = ValueSetPattern(set_size=1024, std=210.0).generate((64, 64), "fp32", rng)
        assert len(np.unique(values)) > 256

    def test_invalid_set_size(self):
        with pytest.raises(PatternError):
            ValueSetPattern(set_size=0)


class TestConstantPatterns:
    def test_constant_value(self, rng):
        values = ConstantPattern(3.0).generate((4, 4), "fp32", rng)
        np.testing.assert_array_equal(values, np.full((4, 4), 3.0))

    def test_constant_clipped_to_range(self, rng):
        values = ConstantPattern(1e6).generate((2, 2), "fp16", rng)
        assert values.max() <= get_dtype("fp16").representable_range[1]

    def test_constant_random_is_uniform_fill(self, rng):
        values = ConstantRandomPattern(std=210.0).generate((16, 16), "fp16", rng)
        assert len(np.unique(values)) == 1

    def test_constant_random_differs_across_rngs(self):
        pattern = ConstantRandomPattern(std=210.0)
        a = pattern.generate((4, 4), "fp16", derive_rng(1, "A"))
        b = pattern.generate((4, 4), "fp16", derive_rng(1, "B"))
        assert a[0, 0] != b[0, 0]


class TestUniformPattern:
    def test_bounds(self, rng):
        values = UniformPattern(-2.0, 2.0).generate((32, 32), "fp32", rng)
        assert values.min() >= -2.0 and values.max() <= 2.0

    def test_invalid_bounds(self):
        with pytest.raises(PatternError):
            UniformPattern(1.0, 1.0)


class TestPatternBase:
    def test_invalid_shape_rejected(self, rng):
        with pytest.raises(PatternError):
            GaussianPattern().generate((0, 4), "fp32", rng)

    def test_with_transforms_builds_composite(self, rng):
        composite = GaussianPattern(0, 210.0).with_transforms(SparsityTransform(0.5))
        assert isinstance(composite, TransformedPattern)
        values = composite.generate((32, 32), "fp16", rng)
        assert (values == 0).mean() == pytest.approx(0.5, abs=0.05)

    def test_transformed_pattern_rejects_non_transform(self):
        with pytest.raises(PatternError):
            TransformedPattern(GaussianPattern(), ["not a transform"])

    def test_transformed_pattern_rejects_non_pattern_base(self):
        with pytest.raises(PatternError):
            TransformedPattern("nope", [])

    def test_transformed_pattern_name_composition(self):
        composite = TransformedPattern(GaussianPattern(0, 1), [SparsityTransform(0.5)])
        assert "gaussian" in composite.name and "sparsity" in composite.name

    def test_describe_includes_transforms(self):
        composite = TransformedPattern(GaussianPattern(0, 1), [SparsityTransform(0.25)])
        desc = composite.describe()
        assert desc["base"]["name"] == "gaussian"
        assert desc["transforms"][0]["name"] == "sparsity"

    def test_abstract_classes_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Pattern()
        with pytest.raises(TypeError):
            Transform()
