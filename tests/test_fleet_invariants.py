"""Property suite (hypothesis) for the fleet scheduler and attribution.

The invariants the ISSUE pins down:

* per-tenant energy attribution sums to the cluster total within float
  tolerance (conservation);
* the cluster power series is non-negative everywhere and never exceeds
  the sum of the active per-GPU power limits;
* an empty trace produces a zero-length series;
* the scheduler never double-books a GPU in a tick.

Estimates are synthetic (drawn by hypothesis, resolved through the real
:class:`KernelEstimate`/ClockModel DVFS path) so every example is pure
arithmetic — no engine runs, thousands of examples stay fast.  The
engine-backed end-to-end versions of these invariants run once each in
``TestEndToEnd`` below.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    CapEvent,
    DiscreteTimeScheduler,
    FleetSpec,
    IDLE_TENANT,
    KernelEstimate,
    Trace,
    TraceJob,
    WorkloadSpec,
    attribute_energy,
    simulate,
)
from repro.gpu.specs import get_gpu_spec

WORKLOAD_NAMES = ("w0", "w1", "w2")
#: Shared catalogue: workload axes don't matter for synthetic estimates,
#: only the names do.
CATALOGUE = {
    name: WorkloadSpec(matrix_size=128, iterations=100) for name in WORKLOAD_NAMES
}
#: Feasible caps: comfortably above the idle floor and the largest
#: synthetic unconstrained power's MIN_CLOCK_SCALE floor, so the DVFS
#: resolution can always satisfy the limit and "series <= sum of active
#: caps" is a real guarantee rather than vacuously clamped.
MIN_CAP = 150.0

jobs_strategy = st.lists(
    st.builds(
        TraceJob,
        arrival_tick=st.integers(min_value=0, max_value=12),
        tenant=st.sampled_from(["alice", "bob", "carol"]),
        workload=st.sampled_from(list(WORKLOAD_NAMES)),
        kernels=st.integers(min_value=1, max_value=2_000),
    ),
    min_size=0,
    max_size=24,
)

fleet_strategy = st.builds(
    lambda counts, cap, event_tick, event_cap: FleetSpec.from_counts(
        {model: n for model, n in counts.items() if n > 0} or {"a100": 1},
        cap_watts=cap,
        cap_events=[CapEvent(tick=event_tick, cap_watts=event_cap)],
    ),
    counts=st.fixed_dictionaries(
        {
            "a100": st.integers(min_value=0, max_value=4),
            "h100": st.integers(min_value=0, max_value=2),
        }
    ),
    cap=st.one_of(st.none(), st.floats(min_value=MIN_CAP, max_value=800.0)),
    event_tick=st.integers(min_value=0, max_value=10),
    event_cap=st.one_of(st.none(), st.floats(min_value=MIN_CAP, max_value=800.0)),
)

estimate_params = st.fixed_dictionaries(
    {
        "power": st.floats(min_value=40.0, max_value=140.0),
        "base_time": st.floats(min_value=1e-4, max_value=30.0),
    }
)


def synthetic_estimates(fleet: FleetSpec, draws: "dict[str, dict[str, float]]"):
    return {
        (workload, model): KernelEstimate(
            workload=workload,
            gpu_model=model,
            unconstrained_power_watts=draws[workload]["power"],
            base_iteration_time_s=draws[workload]["base_time"],
            spec=get_gpu_spec(model),
        )
        for workload in WORKLOAD_NAMES
        for model in fleet.models()
    }


def run_case(jobs, fleet, draws, tick_s=60.0):
    trace = Trace(name="prop", tick_s=tick_s, workloads=CATALOGUE, jobs=jobs)
    schedule = DiscreteTimeScheduler(fleet).schedule(
        trace, synthetic_estimates(fleet, draws)
    )
    attribution = attribute_energy(schedule, fleet, tick_s)
    return trace, schedule, attribution


case_strategy = st.tuples(
    jobs_strategy,
    fleet_strategy,
    st.fixed_dictionaries({name: estimate_params for name in WORKLOAD_NAMES}),
)


class TestSchedulerInvariants:
    @settings(max_examples=120, deadline=None)
    @given(case=case_strategy)
    def test_never_double_books_a_gpu(self, case):
        jobs, fleet, draws = case
        _, schedule, _ = run_case(jobs, fleet, draws)
        by_gpu: "dict[int, list[tuple[int, int]]]" = {}
        for placement in schedule.placements:
            by_gpu.setdefault(placement.gpu_index, []).append(
                (placement.start_tick, placement.end_tick)
            )
        for spans in by_gpu.values():
            spans.sort()
            for (_, prev_end), (start, _) in zip(spans, spans[1:]):
                assert start >= prev_end, "two jobs overlap on one GPU"

    @settings(max_examples=120, deadline=None)
    @given(case=case_strategy)
    def test_every_job_placed_after_arrival_with_positive_span(self, case):
        jobs, fleet, draws = case
        trace, schedule, _ = run_case(jobs, fleet, draws)
        assert len(schedule.placements) == len(jobs)
        for placement in schedule.placements:
            assert placement.end_tick > placement.start_tick
            assert placement.start_tick >= trace.jobs[placement.job_index].arrival_tick

    @settings(max_examples=120, deadline=None)
    @given(case=case_strategy)
    def test_placed_power_respects_the_limit_at_start(self, case):
        jobs, fleet, draws = case
        _, schedule, _ = run_case(jobs, fleet, draws)
        for placement in schedule.placements:
            limit = fleet.power_limit_at(placement.start_tick, placement.gpu_index)
            assert placement.power_watts <= limit + 1e-9


class TestAttributionInvariants:
    @settings(max_examples=120, deadline=None)
    @given(case=case_strategy)
    def test_attribution_conserves_energy(self, case):
        jobs, fleet, draws = case
        _, _, attribution = run_case(jobs, fleet, draws)
        total = attribution.total_energy_j()
        parts = sum(attribution.tenant_energy_j().values())
        assert total == pytest.approx(parts, rel=1e-9, abs=1e-6)

    @settings(max_examples=120, deadline=None)
    @given(case=case_strategy)
    def test_power_series_non_negative_and_capped(self, case):
        jobs, fleet, draws = case
        _, _, attribution = run_case(jobs, fleet, draws)
        series = attribution.cluster_power_watts()
        assert np.all(series >= 0.0)
        for tick, value in enumerate(series):
            cap_sum = sum(
                fleet.power_limit_at(tick, g) for g in range(len(fleet))
            )
            assert value <= cap_sum + 1e-6

    @settings(max_examples=120, deadline=None)
    @given(case=case_strategy)
    def test_empty_trace_zero_length_series(self, case):
        _, fleet, draws = case
        _, schedule, attribution = run_case([], fleet, draws)
        assert schedule.horizon_ticks == 0
        assert attribution.cluster_power_watts().shape == (0,)
        assert attribution.total_energy_j() == 0.0

    @settings(max_examples=60, deadline=None)
    @given(case=case_strategy)
    def test_idle_tenant_only_when_accounted(self, case):
        jobs, fleet, draws = case
        trace, schedule, attribution = run_case(jobs, fleet, draws)
        if jobs and fleet.include_idle_power:
            assert IDLE_TENANT in attribution.tenant_power_watts
            assert np.all(attribution.tenant_power_watts[IDLE_TENANT] >= 0.0)


class TestEndToEnd:
    """The same invariants through the real estimation engine, once."""

    @pytest.fixture(scope="class")
    def result(self):
        trace = Trace(
            name="e2e",
            tick_s=60.0,
            workloads={
                "dense": WorkloadSpec(matrix_size=128, iterations=500, seeds=1),
                "sparse": WorkloadSpec(
                    pattern_family="sparsity",
                    pattern_params={"sparsity": 0.5},
                    matrix_size=128,
                    iterations=500,
                    seeds=1,
                ),
            },
            jobs=tuple(
                TraceJob(arrival_tick=t, tenant=tenant, workload=workload, kernels=200)
                for t in range(4)
                for tenant, workload in (("a", "dense"), ("b", "sparse"))
            ),
        )
        fleet = FleetSpec.from_counts({"a100": 2}, cap_watts=200.0)
        return simulate(trace, fleet, cache=None, activity_cache=None)

    def test_conservation(self, result):
        total = result.total_energy_j
        parts = sum(result.tenant_energy_j().values())
        assert total == pytest.approx(parts, rel=1e-9)

    def test_series_bounds(self, result):
        series = np.asarray(result.power_series_watts())
        assert np.all(series >= 0.0)
        assert np.all(series <= 2 * 200.0 + 1e-6)

    def test_energy_matches_series_sum(self, result):
        series = result.power_series_watts()
        assert result.total_energy_j == pytest.approx(
            float(sum(series)) * result.tick_s, rel=1e-9
        )
