"""Tests for the serving layer: service semantics, HTTP parsing, server loop.

The HTTP client calls in the server tests run in an executor thread —
blocking ``urlopen`` on the event-loop thread would deadlock against a
server running on the same loop.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ReproError, ServiceOverloadedError, ServingError
from repro.experiments.harness import run_experiment
from repro.serve.http import (
    HttpError,
    HttpRequest,
    read_request,
    render_response,
)
from repro.serve.server import EstimationServer
from repro.serve.service import EstimationService, ServiceConfig


class CountingCompute:
    """``run_configs`` stand-in that counts invocations and configurations."""

    def __init__(self, fn=None):
        from repro.experiments.sweep import run_configs

        self.fn = fn if fn is not None else run_configs
        self.calls = 0
        self.configs_seen = 0

    def __call__(self, configs, **kwargs):
        self.calls += 1
        self.configs_seen += len(configs)
        return self.fn(configs, **kwargs)


def nocache_service(compute=None, config=None) -> EstimationService:
    """A service with every cache tier disabled, so compute counts are real."""
    return EstimationService(
        config if config is not None else ServiceConfig(batch_window_s=0.01),
        cache=None,
        activity_cache=None,
        plan_cache=None,
        compute=compute,
    )


class TestSingleFlight:
    def test_concurrent_duplicates_compute_once(self, quiet_config):
        config = quiet_config()
        compute = CountingCompute()
        service = nocache_service(compute)

        async def scenario():
            try:
                return await asyncio.gather(
                    *(service.submit(config) for _ in range(5))
                )
            finally:
                await service.close()

        results = asyncio.run(scenario())
        assert compute.calls == 1
        assert compute.configs_seen == 1
        assert service.stats.requests == 5
        assert service.stats.coalesced == 4
        # Every waiter shares the one result object.
        assert all(result is results[0] for result in results)
        # ...and it is bit-for-bit what an uncached direct run produces.
        direct = run_experiment(config, cache=None)
        assert results[0].as_dict() == direct.as_dict()

    def test_label_only_variants_coalesce_with_restamped_labels(self, quiet_config):
        config_a = quiet_config(label="panel-a")
        config_b = quiet_config(label="panel-b")
        compute = CountingCompute()
        service = nocache_service(compute)

        async def scenario():
            try:
                return await asyncio.gather(
                    service.submit(config_a), service.submit(config_b)
                )
            finally:
                await service.close()

        result_a, result_b = asyncio.run(scenario())
        assert compute.calls == 1 and compute.configs_seen == 1
        assert result_a is result_b  # labels are not part of the flight key
        doc_a = EstimationService.render_result(config_a, result_a)
        doc_b = EstimationService.render_result(config_b, result_b)
        assert doc_a["config"]["label"] == "panel-a"
        assert doc_b["config"]["label"] == "panel-b"
        # Rendering b's document never relabeled the shared object, which
        # still carries the label of the request that computed it.
        assert result_a.as_dict()["config"]["label"] == "panel-a"

    def test_sequential_requests_do_not_coalesce(self, quiet_config):
        config = quiet_config()
        compute = CountingCompute()
        service = nocache_service(compute)

        async def scenario():
            try:
                first = await service.submit(config)
                second = await service.submit(config)
                return first, second
            finally:
                await service.close()

        first, second = asyncio.run(scenario())
        # The flight finished before the second submit: two computations
        # (caches are off), zero coalesced hits — but still equal results.
        assert compute.calls == 2
        assert service.stats.coalesced == 0
        assert first.as_dict() == second.as_dict()


class TestAdmission:
    def test_second_distinct_request_is_rejected(self, quiet_config):
        service = nocache_service(
            config=ServiceConfig(max_pending=1, batch_window_s=0.5)
        )

        async def scenario():
            first = asyncio.ensure_future(service.submit(quiet_config()))
            await asyncio.sleep(0)  # let it register in flight
            with pytest.raises(ServiceOverloadedError):
                await service.submit(quiet_config(matrix_size=160))
            # A duplicate of the in-flight request still coalesces: joining
            # an existing future consumes no admission capacity.
            duplicate = asyncio.ensure_future(service.submit(quiet_config()))
            results = await asyncio.gather(first, duplicate)
            await service.close()
            return results

        first, duplicate = asyncio.run(scenario())
        assert first is duplicate
        assert service.stats.rejected == 1
        assert service.stats.coalesced == 1

    def test_rejection_is_reported_in_stats_only(self, quiet_config):
        service = nocache_service(
            config=ServiceConfig(max_pending=1, batch_window_s=0.5)
        )

        async def scenario():
            first = asyncio.ensure_future(service.submit(quiet_config()))
            await asyncio.sleep(0)
            for size in (160, 192):
                with pytest.raises(ServiceOverloadedError):
                    await service.submit(quiet_config(matrix_size=size))
            await first
            await service.close()

        asyncio.run(scenario())
        assert service.stats.requests == 3
        assert service.stats.rejected == 2
        assert service.stats.errors == 0


class TestFailurePaths:
    def test_compute_error_reaches_every_waiter(self, quiet_config):
        def explode(configs, **kwargs):
            raise RuntimeError("estimator fell over")

        config = quiet_config()
        service = nocache_service(compute=explode)

        async def scenario():
            results = await asyncio.gather(
                *(service.submit(config) for _ in range(3)),
                return_exceptions=True,
            )
            await service.close()
            return results

        results = asyncio.run(scenario())
        assert len(results) == 3
        assert all(isinstance(exc, RuntimeError) for exc in results)
        assert service.stats.errors == 1  # one flight failed, not three
        assert len(service._inflight) == 0  # failed key fully retired

    def test_batch_failure_is_isolated_per_config(self, quiet_config):
        """One poisoned config in a drained batch fails only its own future."""
        from repro.cache.fingerprint import experiment_fingerprint
        from repro.experiments.sweep import run_configs

        good = quiet_config(label="good")
        poison = quiet_config(matrix_size=160, label="poison")
        poison_key = experiment_fingerprint(poison)

        def compute(configs, **kwargs):
            if any(experiment_fingerprint(c) == poison_key for c in configs):
                raise RuntimeError("poisoned configuration")
            return run_configs(configs, **kwargs)

        service = nocache_service(
            compute, config=ServiceConfig(batch_window_s=0.05)
        )

        async def scenario():
            results = await asyncio.gather(
                service.submit(good),
                service.submit(poison),
                return_exceptions=True,
            )
            await service.close()
            return results

        good_result, poison_result = asyncio.run(scenario())
        # The survivor completed with a real result, bit-for-bit the direct
        # computation; only the poisoned config sees the exception.
        assert isinstance(poison_result, RuntimeError)
        direct = run_experiment(good, cache=None)
        assert good_result.as_dict() == direct.as_dict()
        assert service.stats.errors == 1
        assert service.stats.isolated_retries == 2  # both re-ran individually
        assert len(service._inflight) == 0

    def test_single_config_batch_failure_needs_no_retry(self, quiet_config):
        def explode(configs, **kwargs):
            raise RuntimeError("estimator fell over")

        service = nocache_service(compute=explode)

        async def scenario():
            with pytest.raises(RuntimeError):
                await service.submit(quiet_config())
            await service.close()

        asyncio.run(scenario())
        assert service.stats.errors == 1
        assert service.stats.isolated_retries == 0

    def test_closed_service_rejects_submissions(self, quiet_config):
        service = nocache_service()

        async def scenario():
            await service.close()
            with pytest.raises(ServingError):
                await service.submit(quiet_config())

        asyncio.run(scenario())

    def test_close_fails_pending_futures(self, quiet_config):
        service = nocache_service(
            config=ServiceConfig(batch_window_s=5.0)  # never drains in time
        )

        async def scenario():
            pending = asyncio.ensure_future(service.submit(quiet_config()))
            await asyncio.sleep(0)
            await service.close()
            with pytest.raises(ServingError):
                await pending

        asyncio.run(scenario())


class TestDescribe:
    def test_shape_and_counters(self, quiet_config):
        from repro.cache.store import ActivityCache, ExperimentCache

        cache = ExperimentCache()
        activity_cache = ActivityCache()
        service = EstimationService(
            ServiceConfig(batch_window_s=0.01),
            cache=cache,
            activity_cache=activity_cache,
            plan_cache=None,
        )

        async def scenario():
            try:
                await service.submit(quiet_config())
                await service.submit(quiet_config())
            finally:
                await service.close()

        asyncio.run(scenario())
        doc = service.describe()
        assert set(doc) == {"service", "pending", "config", "caches", "health"}
        assert doc["health"] == {"status": "ok", "reasons": []}
        assert doc["pending"] == 0
        assert doc["service"]["requests"] == 2
        assert doc["service"]["batches"] >= 1
        assert doc["config"]["max_pending"] == 64
        # Explicit (non-default) tiers are reported with live counters.
        assert doc["caches"]["experiment"]["disk_backend"] is None
        assert doc["caches"]["experiment"]["hits"] == 1  # second submit hit
        assert "hit_rate" in doc["caches"]["activity"]
        assert json.dumps(doc)  # the /stats body must be JSON-serializable


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ServingError):
            ServiceConfig(max_pending=0)
        with pytest.raises(ServingError):
            ServiceConfig(batch_window_s=-0.1)
        with pytest.raises(ServingError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ServingError):
            ServiceConfig(workers=0)

    def test_from_env_defaults_and_overrides(self):
        config = ServiceConfig.from_env({})
        assert (config.max_pending, config.max_batch) == (64, 16)
        assert config.batch_window_s == pytest.approx(0.010)
        assert (config.workers, config.backend) == (1, "auto")

        config = ServiceConfig.from_env(
            {
                "REPRO_SERVE_MAX_PENDING": "8",
                "REPRO_SERVE_BATCH_WINDOW_MS": "250",
                "REPRO_SERVE_MAX_BATCH": "4",
                "REPRO_SERVE_WORKERS": "2",
                "REPRO_SERVE_BACKEND": "serial",
            }
        )
        assert config.max_pending == 8
        assert config.batch_window_s == pytest.approx(0.250)
        assert (config.max_batch, config.workers, config.backend) == (4, 2, "serial")

        with pytest.raises(ServingError):
            ServiceConfig.from_env({"REPRO_SERVE_MAX_PENDING": "many"})
        with pytest.raises(ServingError):
            ServiceConfig.from_env({"REPRO_SERVE_BATCH_WINDOW_MS": "-5"})


# --------------------------------------------------------------------- HTTP


def _parse(payload: bytes) -> HttpRequest:
    async def go() -> HttpRequest:
        reader = asyncio.StreamReader()  # needs the running loop
        reader.feed_data(payload)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestHttpParsing:
    def test_request_with_body(self):
        body = b'{"gpu": "a100"}'
        request = _parse(
            b"POST /estimate HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode("latin-1")
            + body
        )
        assert request.method == "POST"
        assert request.path == "/estimate"
        assert request.headers["content-type"] == "application/json"
        assert request.json() == {"gpu": "a100"}

    def test_request_without_body(self):
        request = _parse(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert (request.method, request.path, request.body) == ("GET", "/healthz", b"")

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_truncated_request(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"GET /healthz HTT")
        assert excinfo.value.status == 400

    def test_body_shorter_than_content_length(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"POST /estimate HTTP/1.1\r\nContent-Length: 50\r\n\r\n{}")
        assert excinfo.value.status == 400

    def test_oversized_content_length(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(
                b"POST /estimate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
            )
        assert excinfo.value.status == 413

    def test_chunked_bodies_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(
                b"POST /estimate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert excinfo.value.status == 400

    def test_json_helper_errors(self):
        with pytest.raises(HttpError) as excinfo:
            HttpRequest("POST", "/estimate").json()
        assert excinfo.value.status == 400
        with pytest.raises(HttpError) as excinfo:
            HttpRequest("POST", "/estimate", body=b"{nope").json()
        assert excinfo.value.status == 400
        assert HttpRequest("POST", "/x", body=b'{"a": 1}').json() == {"a": 1}

    def test_render_response(self):
        raw = render_response(200, {"b": 1, "a": 2})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: close" in lines
        assert body == b'{"a": 2, "b": 1}'  # sorted keys
        assert render_response(429, {}).startswith(b"HTTP/1.1 429 Too Many Requests")


# ------------------------------------------------------------------- server


def _http_get(base: str, path: str) -> "tuple[int, dict]":
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _http_post(base: str, path: str, body: dict) -> "tuple[int, dict]":
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


async def _client(call, *args):
    """Run a blocking HTTP helper off the event-loop thread.

    Calling urlopen directly on the loop thread would deadlock: the server
    handling the request runs on this very loop.
    """
    return await asyncio.get_running_loop().run_in_executor(None, call, *args)


def run_with_server(scenario, service=None):
    """Boot a server on a free port, run ``scenario(base, server)``, shut down."""

    async def main():
        server = EstimationServer(service, port=0)
        await server.start()
        serve_task = asyncio.create_task(server.serve_until_stopped())
        base = f"http://127.0.0.1:{server.port}"
        try:
            return await scenario(base, server)
        finally:
            server.stop()
            await serve_task

    return asyncio.run(main())


class TestEstimationServer:
    def test_routes_and_errors(self):
        async def scenario(base, server):
            assert await _client(_http_get, base, "/healthz") == (
                200,
                {"status": "ok", "reasons": []},
            )
            status, payload = await _client(_http_get, base, "/nowhere")
            assert status == 404 and "error" in payload
            status, payload = await _client(_http_get, base, "/estimate")
            assert status == 405  # known path, wrong method
            status, payload = await _client(_http_post, base, "/estimate", {"gpu": 42})
            assert status == 400
            status, payload = await _client(
                _http_post, base, "/estimate", {"no_such_field": 1}
            )
            assert status == 400 and "no_such_field" in payload["error"]

        run_with_server(scenario)

    def test_estimate_and_stats_roundtrip(self, quiet_config):
        service = nocache_service(CountingCompute())
        # The wire document carries the estimator/telemetry knobs as nested
        # mappings — describe() alone is the display subset and would let
        # them fall back to server-side defaults.
        config_doc = {
            **quiet_config().describe(),
            "include_process_variation": False,
            "sampling": {"output_samples": 64},
            "telemetry": {"noise_std_watts": 0.0, "drift_watts": 0.0},
        }

        async def scenario(base, server):
            # Bare config document and {"config": ...} wrapper both work
            # and produce the identical response.
            status, bare = await _client(_http_post, base, "/estimate", config_doc)
            assert status == 200
            assert set(bare) == {"fingerprint", "result"}
            status, wrapped = await _client(
                _http_post, base, "/estimate", {"config": config_doc}
            )
            assert status == 200 and wrapped == bare

            status, stats = await _client(_http_get, base, "/stats")
            assert status == 200
            assert stats["service"]["requests"] == 2
            return bare

        response = run_with_server(scenario, service)
        direct = run_experiment(quiet_config(), cache=None)
        assert response["result"]["mean_power_watts"] == pytest.approx(
            direct.as_dict()["mean_power_watts"]
        )

    def test_http_429_when_overloaded(self, quiet_config):
        service = nocache_service(
            config=ServiceConfig(max_pending=1, batch_window_s=0.5)
        )
        first_doc = quiet_config().describe()
        second_doc = quiet_config(matrix_size=160).describe()

        async def scenario(base, server):
            first = asyncio.ensure_future(
                _client(_http_post, base, "/estimate", first_doc)
            )
            # Wait until the first request is registered in flight.
            for _ in range(100):
                if len(service._inflight) >= 1:
                    break
                await asyncio.sleep(0.01)
            status, payload = await _client(_http_post, base, "/estimate", second_doc)
            assert status == 429 and "error" in payload
            status, _ = await first
            assert status == 200

        run_with_server(scenario, service)
        assert service.stats.rejected == 1

    def test_shutdown_endpoint_stops_server(self):
        async def scenario(base, server):
            status, payload = await _client(_http_post, base, "/shutdown", {})
            assert (status, payload) == (200, {"status": "stopping"})
            # The serve loop observes the stop event without outside help.
            await asyncio.wait_for(server._stopping.wait(), timeout=5)

        run_with_server(scenario)


class TestChaosBatches:
    """Chaos parametrization: injected batch faults never leak a wrong or
    stuck response to any waiter, coalesced or not (full fault matrix in
    tests/test_faults.py)."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_coalesced_waiters_survive_injected_batch_fault(self, quiet_config, seed):
        import repro.faults as faults

        faults.install_schedule(
            faults.FaultSchedule(
                faults.parse_schedule("serve.batch:error@0.5"), seed=seed
            )
        )
        try:
            config = quiet_config()
            compute = CountingCompute()
            service = nocache_service(compute)

            async def scenario():
                try:
                    return await asyncio.gather(
                        *(service.submit(config) for _ in range(4)),
                        return_exceptions=True,
                    )
                finally:
                    await service.close()

            outcomes = asyncio.run(scenario())
        finally:
            faults.reset()
        direct = run_experiment(config, cache=None)
        for outcome in outcomes:
            # Every waiter resolved: the correct result or a typed error.
            if isinstance(outcome, BaseException):
                assert isinstance(outcome, ReproError)
            else:
                assert outcome.as_dict() == direct.as_dict()
