"""Tests for ``repro.staticcheck`` (mirror of CI's staticcheck job).

Each pass is proven by a seeded-violation fixture: a miniature repo under
``tmp_path`` mirroring the real layout (``src/repro/...``) with exactly
one planted violation, asserted to produce exactly one finding with the
right rule id and line.  A clean-repo run then pins the working tree to
the checked-in baseline, so the gate's green on this repo is itself under
test.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import (
    SCHEMA_VERSION,
    BaselineError,
    load_baseline,
    load_codebase,
    run_staticcheck,
)
from repro.staticcheck.registry import run_passes
import repro.staticcheck.passes  # noqa: F401  (registers the passes)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write(root: Path, relpath: str, text: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def _run_rule(root: Path, rule: str):
    _, findings = run_passes(load_codebase(root), rules=[rule])
    return findings


class TestPurityPass:
    def test_impure_call_in_reachable_helper(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/cache/fingerprint.py",
            """\
            from repro.util.hashing import digest_payload


            def experiment_fingerprint(config):
                return digest_payload(config)
            """,
        )
        _write(
            tmp_path,
            "src/repro/util/hashing.py",
            """\
            import os


            def digest_payload(config):
                salt = os.environ.get("REPRO_SALT", "")
                return (config, salt)
            """,
        )
        findings = _run_rule(tmp_path, "fingerprint-purity")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "fingerprint-purity"
        assert finding.file == "src/repro/util/hashing.py"
        assert finding.line == 5
        assert finding.detail == "repro.util.hashing.digest_payload:os.environ.get"

    def test_aliased_numpy_random_detected(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/cache/fingerprint.py",
            """\
            import numpy as np


            def experiment_fingerprint(config):
                jitter = np.random.random()
                return (config, jitter)
            """,
        )
        findings = _run_rule(tmp_path, "fingerprint-purity")
        assert len(findings) == 1
        assert findings[0].line == 5
        assert "numpy.random" in findings[0].detail

    def test_rebound_global_read_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/cache/fingerprint.py",
            """\
            _MODE = "strict"


            def set_mode(mode):
                global _MODE
                _MODE = mode


            def experiment_fingerprint(config):
                return (_MODE, config)
            """,
        )
        findings = _run_rule(tmp_path, "fingerprint-purity")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.line == 10
        assert finding.detail.endswith("experiment_fingerprint:global:_MODE")

    def test_pure_fixture_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/cache/fingerprint.py",
            """\
            import hashlib
            import json


            def experiment_fingerprint(config):
                payload = json.dumps(config, sort_keys=True)
                return hashlib.sha256(payload.encode()).hexdigest()
            """,
        )
        assert _run_rule(tmp_path, "fingerprint-purity") == []


class TestBlockingPass:
    def test_direct_blocking_call_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serve/handler.py",
            """\
            import time


            async def handle(request):
                time.sleep(0.1)
                return request
            """,
        )
        findings = _run_rule(tmp_path, "async-blocking")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "async-blocking"
        assert finding.file == "src/repro/serve/handler.py"
        assert finding.line == 5
        assert finding.detail == "handle:time.sleep"

    def test_inline_import_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serve/handler.py",
            """\
            async def handle(request):
                from repro.cache.fingerprint import experiment_fingerprint

                return experiment_fingerprint(request)
            """,
        )
        findings = _run_rule(tmp_path, "async-blocking")
        assert len(findings) == 1
        assert findings[0].line == 2
        assert findings[0].detail == "handle:import:experiment_fingerprint"

    def test_executor_handoff_is_exempt(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/serve/handler.py",
            """\
            import asyncio
            import time


            async def handle(loop, request):
                await loop.run_in_executor(None, time.sleep, 0.1)
                return await asyncio.to_thread(len, request)
            """,
        )
        assert _run_rule(tmp_path, "async-blocking") == []

    def test_sync_code_outside_serve_ignored(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/experiments/runner.py",
            """\
            import time


            async def helper():
                time.sleep(1.0)
            """,
        )
        assert _run_rule(tmp_path, "async-blocking") == []


class TestLocksPass:
    def test_mixed_locked_unlocked_write_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/cache/store.py",
            """\
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries = {**self._entries, key: value}

                def clear(self):
                    self._entries = {}
            """,
        )
        findings = _run_rule(tmp_path, "lock-discipline")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "lock-discipline"
        assert finding.file == "src/repro/cache/store.py"
        assert finding.line == 14
        assert finding.detail == "Cache._entries"

    def test_consistent_locking_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/cache/store.py",
            """\
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries = {**self._entries, key: value}

                def clear(self):
                    with self._lock:
                        self._entries = {}
            """,
        )
        assert _run_rule(tmp_path, "lock-discipline") == []

    def test_constructor_writes_exempt(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/cache/store.py",
            """\
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._hits = 0

                def bump(self):
                    with self._lock:
                        self._hits += 1
            """,
        )
        assert _run_rule(tmp_path, "lock-discipline") == []


class TestEnvPass:
    def _seed_doc(self, root: Path, names: str = "`REPRO_DEMO_KNOB`") -> None:
        _write(root, "docs/configuration.md", f"{names}\n")

    def test_documented_read_is_clean(self, tmp_path):
        self._seed_doc(tmp_path)
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            import os

            VALUE = os.environ.get("REPRO_DEMO_KNOB", "quick")
            """,
        )
        assert _run_rule(tmp_path, "env-registry") == []

    def test_undocumented_name_flagged(self, tmp_path):
        self._seed_doc(tmp_path)
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            import os

            VALUE = os.environ.get("REPRO_SECRET_KNOB", "x")
            """,
        )
        findings = _run_rule(tmp_path, "env-registry")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "env-registry"
        assert finding.line == 3
        assert finding.detail == "undocumented:REPRO_SECRET_KNOB"

    def test_non_repro_namespace_flagged(self, tmp_path):
        self._seed_doc(tmp_path)
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            import os

            VALUE = os.environ.get("MY_DEBUG", "")
            """,
        )
        findings = _run_rule(tmp_path, "env-registry")
        assert len(findings) == 1
        assert findings[0].detail == "MY_DEBUG"
        assert findings[0].line == 3

    def test_subscript_read_flagged(self, tmp_path):
        self._seed_doc(tmp_path)
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            import os

            VALUE = os.environ["REPRO_DEMO_KNOB"]
            """,
        )
        findings = _run_rule(tmp_path, "env-registry")
        assert len(findings) == 1
        assert findings[0].detail == "subscript:REPRO_DEMO_KNOB"

    def test_unresolvable_name_flagged(self, tmp_path):
        self._seed_doc(tmp_path)
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            import os

            name = "REPRO" + "_DEMO_KNOB"
            VALUE = os.environ.get(name.strip(), "")
            """,
        )
        findings = _run_rule(tmp_path, "env-registry")
        assert len(findings) == 1
        assert findings[0].detail.startswith("unresolved:")

    def test_helper_parameter_read_exempt(self, tmp_path):
        self._seed_doc(tmp_path)
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            import os


            def _env_int(name, fallback):
                raw = os.environ.get(name, "")
                return int(raw) if raw else fallback
            """,
        )
        assert _run_rule(tmp_path, "env-registry") == []

    def test_constant_named_read_resolved(self, tmp_path):
        self._seed_doc(tmp_path, "`REPRO_DEMO_KNOB`")
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            import os

            ENV_KNOB = "REPRO_DEMO_KNOB"
            VALUE = os.environ.get(ENV_KNOB, "quick")
            """,
        )
        assert _run_rule(tmp_path, "env-registry") == []


class TestExportsPass:
    def test_unbound_all_entry_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/__init__.py",
            """\
            from repro.core import thing

            __all__ = ["thing", "missing"]
            """,
        )
        _write(
            tmp_path,
            "src/repro/core.py",
            """\
            def thing():
                return 1
            """,
        )
        findings = _run_rule(tmp_path, "api-drift")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "api-drift"
        assert finding.file == "src/repro/__init__.py"
        assert finding.line == 3
        assert finding.detail == "repro:__all__:missing"

    def test_duplicate_all_entry_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/__init__.py",
            """\
            from repro.core import thing

            __all__ = ["thing", "thing"]
            """,
        )
        _write(tmp_path, "src/repro/core.py", "def thing():\n    return 1\n")
        findings = _run_rule(tmp_path, "api-drift")
        assert len(findings) == 1
        assert findings[0].detail == "repro:__all__:duplicate:thing"

    def test_lazy_map_checked_both_ways(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/__init__.py",
            """\
            __all__ = ["api"]

            _LAZY_SUBMODULES = ("api", "ghost")
            """,
        )
        _write(tmp_path, "src/repro/api.py", "def serve():\n    return 1\n")
        findings = _run_rule(tmp_path, "api-drift")
        details = {finding.detail for finding in findings}
        assert details == {
            "repro:lazy:missing-module:ghost",
            "repro:lazy:unexported:ghost",
        }

    def test_facade_import_of_missing_name_flagged(self, tmp_path):
        _write(tmp_path, "src/repro/__init__.py", "")
        _write(
            tmp_path,
            "src/repro/api.py",
            """\
            from repro.core import nope

            __all__ = ["nope"]
            """,
        )
        _write(tmp_path, "src/repro/core.py", "def thing():\n    return 1\n")
        findings = _run_rule(tmp_path, "api-drift")
        assert len(findings) == 1
        assert findings[0].detail == "repro.api:from:repro.core:nope"

    def test_consistent_surface_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/__init__.py",
            """\
            from repro.core import thing

            __all__ = ["thing", "api"]

            _LAZY_SUBMODULES = ("api",)
            """,
        )
        _write(tmp_path, "src/repro/core.py", "def thing():\n    return 1\n")
        _write(
            tmp_path,
            "src/repro/api.py",
            """\
            from repro.core import thing

            __all__ = ["thing"]
            """,
        )
        assert _run_rule(tmp_path, "api-drift") == []


class TestEnginesPass:
    """Mini engines packages with exactly one planted inconsistency each."""

    def _engine_module(self, root, body):
        _write(
            root,
            "src/repro/optimize/engines/grid.py",
            "from repro.optimize.engines.base import register_engine\n\n\n" + body,
        )

    def _consistent_repo(self, root):
        self._engine_module(
            root,
            '@register_engine("grid")\nclass GridEngine:\n    pass\n',
        )
        _write(
            root,
            "src/repro/optimize/engines/__init__.py",
            """\
            from repro.optimize.engines import grid

            __all__ = ["GridEngine"]
            """,
        )
        _write(root, "docs/optimize.md", "| `grid` | `GridEngine` | demo engine |\n")

    def test_consistent_registry_is_clean(self, tmp_path):
        self._consistent_repo(tmp_path)
        assert _run_rule(tmp_path, "engine-registry") == []

    def test_tree_without_engines_is_clean(self, tmp_path):
        _write(tmp_path, "src/repro/mod.py", "def thing():\n    return 1\n")
        assert _run_rule(tmp_path, "engine-registry") == []

    def test_duplicate_registration_flagged(self, tmp_path):
        self._consistent_repo(tmp_path)
        self._engine_module(
            tmp_path,
            '@register_engine("grid")\nclass GridEngine:\n    pass\n\n\n'
            '@register_engine("grid")\nclass OtherEngine:\n    pass\n',
        )
        _write(
            tmp_path,
            "src/repro/optimize/engines/__init__.py",
            """\
            from repro.optimize.engines import grid

            __all__ = ["GridEngine", "OtherEngine"]
            """,
        )
        findings = _run_rule(tmp_path, "engine-registry")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "engine-registry"
        assert finding.file == "src/repro/optimize/engines/grid.py"
        assert finding.line == 10  # the second class statement
        assert finding.detail == "repro.optimize.engines.grid:duplicate:grid"

    def test_unimported_engine_module_flagged(self, tmp_path):
        self._consistent_repo(tmp_path)
        _write(
            tmp_path,
            "src/repro/optimize/engines/__init__.py",
            '__all__ = ["GridEngine"]\n',
        )
        findings = _run_rule(tmp_path, "engine-registry")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.file == "src/repro/optimize/engines/__init__.py"
        assert finding.line == 1
        assert finding.detail == (
            "repro.optimize.engines:unimported:repro.optimize.engines.grid"
        )

    def test_unexported_engine_class_flagged(self, tmp_path):
        self._consistent_repo(tmp_path)
        _write(
            tmp_path,
            "src/repro/optimize/engines/__init__.py",
            """\
            from repro.optimize.engines import grid

            __all__ = ["register_engine"]
            """,
        )
        findings = _run_rule(tmp_path, "engine-registry")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.file == "src/repro/optimize/engines/grid.py"
        assert finding.line == 5  # the class statement
        assert finding.detail == "repro.optimize.engines.grid:unexported:GridEngine"

    def test_undocumented_engine_name_flagged(self, tmp_path):
        self._consistent_repo(tmp_path)
        _write(tmp_path, "docs/optimize.md", "no engine table here\n")
        findings = _run_rule(tmp_path, "engine-registry")
        assert len(findings) == 1
        (finding,) = findings
        assert finding.file == "src/repro/optimize/engines/grid.py"
        assert finding.detail == "repro.optimize.engines.grid:undocumented:grid"

    def test_missing_docs_page_tolerated(self, tmp_path):
        self._consistent_repo(tmp_path)
        (tmp_path / "docs" / "optimize.md").unlink()
        assert _run_rule(tmp_path, "engine-registry") == []


class TestSwallowPass:
    def test_silent_broad_handlers_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            def cleanup(entry):
                try:
                    entry.close()
                except Exception:
                    pass


            def publish(entry):
                try:
                    entry.flush()
                except:
                    entry.dirty = True
            """,
        )
        findings = _run_rule(tmp_path, "no-silent-swallow")
        assert [f.detail for f in findings] == ["cleanup:Exception", "publish:bare"]
        assert [f.line for f in findings] == [4, 11]
        assert all(f.rule == "no-silent-swallow" for f in findings)

    def test_alias_tuple_and_nested_handlers_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            import builtins as b


            class Store:
                def drop(self):
                    def inner():
                        try:
                            self.conn.close()
                        except (ValueError, b.BaseException):
                            pass
                    inner()
            """,
        )
        findings = _run_rule(tmp_path, "no-silent-swallow")
        assert len(findings) == 1
        assert findings[0].detail == "Store.drop.inner:BaseException"

    def test_loud_handlers_are_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            import logging


            def mapped(entry):
                try:
                    return entry.load()
                except Exception as exc:
                    raise RuntimeError("load failed") from exc


            def sentinel(entry):
                try:
                    return entry.load()
                except Exception:
                    return None


            def accounted(entry, stats):
                try:
                    entry.flush()
                except Exception as exc:
                    stats.record(str(exc))


            def logged(entry):
                try:
                    entry.flush()
                except Exception:
                    logging.warning("flush failed")


            def narrow(entry):
                try:
                    entry.flush()
                except OSError:
                    pass
            """,
        )
        assert _run_rule(tmp_path, "no-silent-swallow") == []

    def test_same_scope_duplicates_get_stable_ordinals(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/mod.py",
            """\
            def twice(entry):
                try:
                    entry.open()
                except Exception:
                    pass
                try:
                    entry.close()
                except Exception:
                    pass
            """,
        )
        findings = _run_rule(tmp_path, "no-silent-swallow")
        assert [f.detail for f in findings] == ["twice:Exception", "twice:Exception#2"]


class TestBaseline:
    def _seed_violation(self, root: Path) -> None:
        _write(root, "docs/configuration.md", "`REPRO_DEMO_KNOB`\n")
        _write(
            root,
            "src/repro/mod.py",
            'import os\n\nVALUE = os.environ.get("REPRO_ROGUE_KNOB", "x")\n',
        )

    def _baseline(self, root: Path, entries: list) -> Path:
        path = root / "staticcheck-baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": entries}))
        return path

    def test_matching_entry_suppresses(self, tmp_path):
        self._seed_violation(tmp_path)
        self._baseline(
            tmp_path,
            [
                {
                    "rule": "env-registry",
                    "file": "src/repro/mod.py",
                    "detail": "undocumented:REPRO_ROGUE_KNOB",
                    "reason": "legacy knob, removal tracked elsewhere",
                }
            ],
        )
        report = run_staticcheck(tmp_path, rules=["env-registry"])
        assert report.ok
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_stale_entry_fails_run(self, tmp_path):
        _write(tmp_path, "docs/configuration.md", "x\n")
        _write(tmp_path, "src/repro/mod.py", "VALUE = 1\n")
        self._baseline(
            tmp_path,
            [
                {
                    "rule": "env-registry",
                    "file": "src/repro/mod.py",
                    "detail": "undocumented:REPRO_GONE",
                    "reason": "was here once",
                }
            ],
        )
        report = run_staticcheck(tmp_path, rules=["env-registry"])
        assert not report.ok
        assert report.findings == []
        assert len(report.stale_baseline) == 1

    def test_rule_filter_ignores_other_rules_entries(self, tmp_path):
        """A --rule run must not call the other rules' entries stale."""
        _write(tmp_path, "docs/configuration.md", "x\n")
        _write(tmp_path, "src/repro/mod.py", "VALUE = 1\n")
        self._baseline(
            tmp_path,
            [
                {
                    "rule": "lock-discipline",
                    "file": "src/repro/other.py",
                    "detail": "Cache._entries",
                    "reason": "single-threaded by construction",
                }
            ],
        )
        report = run_staticcheck(tmp_path, rules=["env-registry"])
        assert report.ok

    def test_entry_without_reason_rejected(self, tmp_path):
        path = self._baseline(
            tmp_path,
            [{"rule": "env-registry", "file": "a.py", "detail": "d", "reason": ""}],
        )
        with pytest.raises(BaselineError, match="reason"):
            load_baseline(path)

    def test_malformed_document_rejected(self, tmp_path):
        path = tmp_path / "staticcheck-baseline.json"
        path.write_text("[]")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_missing_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "nope.json")
        assert baseline.entries == []


class TestCleanRepo:
    def test_working_tree_matches_baseline_exactly(self):
        """The repo's own code passes every rule, modulo exactly the
        checked-in baseline — no more findings, no stale entries."""
        report = run_staticcheck(REPO_ROOT)
        assert report.ok, "\n" + "\n".join(f.render() for f in report.findings) + str(
            report.stale_baseline
        )
        baseline = load_baseline(REPO_ROOT / "staticcheck-baseline.json")
        assert {f.baseline_key for f in report.suppressed} == baseline.keys
        assert report.rules == [
            "api-drift",
            "async-blocking",
            "engine-registry",
            "env-registry",
            "fingerprint-purity",
            "lock-discipline",
            "no-silent-swallow",
        ]
        assert report.modules > 100  # the loader actually saw the repo


class TestJsonSchemaAndCli:
    def _cli(self, *args: str, cwd: Path = REPO_ROOT):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
        )

    def test_report_dict_shape(self, tmp_path):
        _write(tmp_path, "docs/configuration.md", "x\n")
        _write(tmp_path, "src/repro/mod.py", "VALUE = 1\n")
        document = run_staticcheck(tmp_path).as_dict()
        assert document["schema_version"] == SCHEMA_VERSION == 1
        assert set(document) == {
            "schema_version",
            "root",
            "rules",
            "modules",
            "counts",
            "findings",
            "suppressed",
            "stale_baseline",
            "ok",
        }
        assert set(document["counts"]) == {"findings", "suppressed", "stale_baseline"}

    def test_cli_json_on_repo_is_ok(self):
        proc = self._cli("--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        document = json.loads(proc.stdout)
        assert document["ok"] is True
        assert document["schema_version"] == 1
        assert document["findings"] == []

    def test_cli_fails_on_seeded_violation(self, tmp_path):
        _write(tmp_path, "docs/configuration.md", "x\n")
        _write(
            tmp_path,
            "src/repro/serve/handler.py",
            "import time\n\n\nasync def handle(request):\n    time.sleep(1)\n",
        )
        proc = self._cli("--root", str(tmp_path), "--rule", "async-blocking")
        assert proc.returncode == 1
        assert "async-blocking" in proc.stdout
        assert "handler.py:5" in proc.stdout

    def test_cli_finding_lines_carry_hints(self, tmp_path):
        _write(tmp_path, "docs/configuration.md", "x\n")
        _write(
            tmp_path,
            "src/repro/serve/handler.py",
            "import time\n\n\nasync def handle(request):\n    time.sleep(1)\n",
        )
        proc = self._cli("--root", str(tmp_path), "--rule", "async-blocking")
        assert "hint:" in proc.stdout

    def test_cli_list_rules(self):
        proc = self._cli("--list-rules")
        assert proc.returncode == 0
        for rule in (
            "fingerprint-purity",
            "async-blocking",
            "lock-discipline",
            "env-registry",
            "api-drift",
        ):
            assert rule in proc.stdout

    def test_cli_unknown_rule_is_usage_error(self):
        proc = self._cli("--rule", "no-such-rule")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr
