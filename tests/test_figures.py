"""Tests for the per-figure experiment definitions (quick settings)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import FIGURES, FigureSettings, list_figures, run_figure
from repro.experiments.figures.common import mean_sweep_values
from repro.experiments.figures.fig4_bit_similarity import datatype_power_ranking
from repro.experiments.figures.fig7_generalization import power_swing_by_gpu

#: Tiny settings so the whole figure suite stays fast in unit tests.
TINY = FigureSettings.quick(matrix_size=64, seeds=1, dtypes=("fp16_t",), sweep_points=3)


class TestFigureSettings:
    def test_quick_standard_paper_presets(self):
        assert FigureSettings.quick().matrix_size == 256
        assert FigureSettings.standard().matrix_size == 1024
        assert FigureSettings.paper().matrix_size == 2048
        assert FigureSettings.paper().seeds == 10

    def test_invalid_settings(self):
        with pytest.raises(ExperimentError):
            FigureSettings(matrix_size=2)
        with pytest.raises(ExperimentError):
            FigureSettings(seeds=0)
        with pytest.raises(ExperimentError):
            FigureSettings(sweep_points=1)

    def test_subsample_preserves_endpoints(self):
        settings = FigureSettings.quick(sweep_points=3)
        values = [0, 1, 2, 3, 4, 5, 6, 7]
        subsampled = settings.subsample(values)
        assert subsampled[0] == 0 and subsampled[-1] == 7
        assert len(subsampled) <= 3

    def test_subsample_short_list_unchanged(self):
        settings = FigureSettings.quick(sweep_points=5)
        assert settings.subsample([1, 2]) == [1, 2]

    def test_mean_sweep_values_respect_dtype_range(self):
        assert max(mean_sweep_values("int8")) <= 127
        assert max(mean_sweep_values("fp16")) <= 65504


class TestFigureRegistry:
    def test_all_eight_figures_registered(self):
        assert list_figures() == [f"fig{i}" for i in range(1, 9)]
        assert set(FIGURES) == set(list_figures())

    def test_unknown_figure_rejected(self):
        with pytest.raises(ExperimentError):
            run_figure("fig99", TINY)


class TestFigureRuns:
    def test_fig1_runtime(self):
        figure = run_figure("fig1", TINY)
        assert "runtime_by_dtype" in figure.panels
        sweep = figure.panel("runtime_by_dtype")
        assert sweep.values == list(TINY.dtypes)
        assert all(t > 0 for t in sweep.runtimes())

    def test_fig2_energy(self):
        figure = run_figure("fig2", TINY)
        sweep = figure.panel("energy_by_dtype")
        assert all(e > 0 for e in sweep.energies())

    def test_fig3_panels_per_dtype(self):
        figure = run_figure("fig3", TINY)
        assert f"a_std/{TINY.dtypes[0]}" in figure.panels
        assert f"b_mean/{TINY.dtypes[0]}" in figure.panels
        assert f"c_value_set/{TINY.dtypes[0]}" in figure.panels

    def test_fig4_panels_and_ranking(self):
        settings = FigureSettings.quick(
            matrix_size=64, seeds=1, dtypes=("fp16_t", "int8"), sweep_points=3
        )
        figure = run_figure("fig4", settings)
        ranking = datatype_power_ranking(figure)
        assert set(ranking) == {"fp16_t", "int8"}
        assert ranking["fp16_t"] > ranking["int8"]

    def test_fig5_has_four_panel_families(self):
        figure = run_figure("fig5", TINY)
        dtype = TINY.dtypes[0]
        for prefix in ("a_sorted_rows", "b_sorted_aligned", "c_sorted_columns", "d_sorted_within_rows"):
            assert f"{prefix}/{dtype}" in figure.panels

    def test_fig6_has_four_panel_families(self):
        figure = run_figure("fig6", TINY)
        dtype = TINY.dtypes[0]
        for prefix in ("a_sparsity", "b_sorted_sparsity", "c_zero_lsb", "d_zero_msb"):
            assert f"{prefix}/{dtype}" in figure.panels

    def test_fig7_covers_paper_gpus(self):
        settings = FigureSettings.quick(matrix_size=64, seeds=1, sweep_points=2)
        figure = run_figure("fig7", settings)
        gpus = {key.split("/")[0] for key in figure.panels}
        assert gpus == {"v100", "a100", "h100", "rtx6000"}
        swings = power_swing_by_gpu(figure)
        assert set(swings) == gpus

    def test_fig7_rtx6000_uses_smaller_matrices(self):
        settings = FigureSettings.quick(matrix_size=1024, seeds=1, sweep_points=2)
        from repro.experiments.figures.fig7_generalization import _matrix_size_for

        assert _matrix_size_for("rtx6000", settings) == 512
        assert _matrix_size_for("a100", settings) == 1024

    def test_fig8_scatter_and_correlations(self):
        figure = run_figure("fig8", TINY)
        assert f"scatter/{TINY.dtypes[0]}" in figure.panels
        assert any("corr(power, alignment)" in note for note in figure.notes)

    def test_figure_results_serializable(self):
        import json

        figure = run_figure("fig1", TINY)
        assert json.loads(json.dumps(figure.as_dict()))["name"] == "fig1"
