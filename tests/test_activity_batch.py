"""Batched activity engine: bit-for-bit equivalence with the scalar path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity.engine import estimate_activity, estimate_activity_batch
from repro.activity.sampler import SamplingConfig
from repro.errors import ActivityError, KernelError
from repro.experiments.harness import ExperimentRunner
from repro.kernels.gemm import GemmOperands, GemmProblem
from repro.kernels.schedule import (
    StackedOperandStreams,
    build_streams,
    build_streams_stacked,
)
from repro.patterns.library import build_pattern
from repro.dtypes.registry import get_dtype
from repro.util import bits
from repro.util.rng import derive_rng


def make_operands(size=96, dtype="fp16_t", transpose_b=True, count=3, family="gaussian"):
    spec = get_dtype(dtype)
    problem = GemmProblem.square(size, dtype=dtype, transpose_b=transpose_b)
    pattern = build_pattern(family, spec)
    operands = []
    for seed in range(count):
        a = pattern.generate(problem.a_shape, spec, derive_rng(2024, "A", seed))
        b = pattern.generate(problem.b_storage_shape, spec, derive_rng(2024, "B", seed))
        operands.append(GemmOperands(problem=problem, a=a, b_stored=b))
    return operands


def assert_reports_identical(batch, sequential):
    assert len(batch) == len(sequential)
    for got, expected in zip(batch, sequential):
        got_dict, expected_dict = got.as_dict(), expected.as_dict()
        for field in expected_dict:
            assert got_dict[field] == expected_dict[field], field


class TestBatchEquivalence:
    @pytest.mark.parametrize(
        "dtype,transpose_b",
        [
            ("fp16_t", True),
            ("fp16", True),
            ("bf16", True),
            ("fp32", False),
            ("fp64", True),
            ("int8", True),
            ("int32", False),
        ],
    )
    def test_matches_sequential_bit_for_bit(self, dtype, transpose_b):
        operands = make_operands(dtype=dtype, transpose_b=transpose_b)
        sampling = SamplingConfig(output_samples=64)
        sequential = [
            estimate_activity(op, sampling=sampling, seed=index)
            for index, op in enumerate(operands)
        ]
        assert_reports_identical(
            estimate_activity_batch(operands, sampling=sampling), sequential
        )

    @pytest.mark.parametrize("family", ["sparsity", "sorted_rows", "constant_random"])
    def test_matches_for_structured_patterns(self, family):
        operands = make_operands(family=family)
        sampling = SamplingConfig(output_samples=64)
        sequential = [
            estimate_activity(op, sampling=sampling, seed=index)
            for index, op in enumerate(operands)
        ]
        assert_reports_identical(
            estimate_activity_batch(operands, sampling=sampling), sequential
        )

    def test_explicit_chunking_matches(self):
        operands = make_operands(count=5)
        sampling = SamplingConfig(output_samples=32)
        sequential = [
            estimate_activity(op, sampling=sampling, seed=index)
            for index, op in enumerate(operands)
        ]
        for chunk in (1, 2, 5, 7):
            assert_reports_identical(
                estimate_activity_batch(operands, sampling=sampling, chunk=chunk),
                sequential,
            )

    def test_custom_seeds_respected(self):
        operands = make_operands(count=2)
        sampling = SamplingConfig(output_samples=32)
        sequential = [
            estimate_activity(op, sampling=sampling, seed=seed)
            for seed, op in zip([7, 11], operands)
        ]
        assert_reports_identical(
            estimate_activity_batch(operands, sampling=sampling, seeds=[7, 11]),
            sequential,
        )

    def test_accepts_prebuilt_streams(self):
        operands = make_operands(count=2)
        sampling = SamplingConfig(output_samples=32)
        sequential = [
            estimate_activity(op, sampling=sampling, seed=index)
            for index, op in enumerate(operands)
        ]
        streams = [build_streams(op) for op in operands]
        assert_reports_identical(
            estimate_activity_batch(streams, sampling=sampling), sequential
        )
        stacked = build_streams_stacked(operands)
        assert_reports_identical(
            estimate_activity_batch(stacked, sampling=sampling), sequential
        )

    def test_empty_batch(self):
        assert estimate_activity_batch([]) == []

    def test_validation_errors(self):
        operands = make_operands(count=2)
        with pytest.raises(ActivityError):
            estimate_activity_batch(["nope"])
        with pytest.raises(ActivityError):
            estimate_activity_batch(operands, seeds=[1])
        with pytest.raises(ActivityError):
            estimate_activity_batch(operands, chunk=0)


class TestStackedStreams:
    def test_slice_matches_scalar_build(self):
        operands = make_operands(count=2)
        stacked = build_streams_stacked(operands)
        for index, op in enumerate(operands):
            view = stacked.slice(index)
            scalar = build_streams(op)
            assert np.array_equal(view.a_used, scalar.a_used)
            assert np.array_equal(view.b_used, scalar.b_used)
            assert np.array_equal(view.b_stored, scalar.b_stored)
            assert np.array_equal(view.a_words, scalar.a_words)
            assert np.array_equal(view.b_words, scalar.b_words)

    def test_dimensions(self):
        stacked = build_streams_stacked(make_operands(size=64, count=3))
        assert stacked.batch == 3
        assert (stacked.n, stacked.k, stacked.m) == (64, 64, 64)
        assert isinstance(stacked, StackedOperandStreams)

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(KernelError):
            build_streams_stacked([])
        a, b = make_operands(size=64, count=1) + make_operands(size=96, count=1)
        with pytest.raises(KernelError):
            build_streams_stacked([a, b])
        fp16, int8 = (
            make_operands(size=64, count=1)[0],
            make_operands(size=64, dtype="int8", count=1)[0],
        )
        with pytest.raises(KernelError):
            build_streams_stacked([fp16, int8])

    def test_rejects_mixed_operand_types_either_order(self):
        operands = make_operands(size=64, count=2)
        streams = build_streams(operands[1])
        with pytest.raises(KernelError):
            build_streams_stacked([operands[0], streams])
        with pytest.raises(KernelError):
            build_streams_stacked([streams, operands[0]])
        with pytest.raises(KernelError):
            build_streams_stacked(["junk"])


class TestToggleFractionPerSlice:
    def test_matches_scalar_per_slice(self, rng):
        words = rng.integers(0, 1 << 16, size=(4, 32, 48), dtype=np.uint64).astype(
            np.uint16
        )
        for axis in (1, 2, -1):
            batched = bits.toggle_fraction_per_slice(words, axis=axis)
            expected = [
                bits.toggle_fraction_along_axis(words[i], axis=(axis % 3) - 1)
                for i in range(words.shape[0])
            ]
            assert batched.tolist() == expected

    def test_short_axis_gives_zeros(self):
        words = np.zeros((3, 1, 5), dtype=np.uint16)
        assert bits.toggle_fraction_per_slice(words, axis=1).tolist() == [0.0] * 3

    def test_rejects_bad_input(self):
        with pytest.raises(Exception):
            bits.toggle_fraction_per_slice(np.zeros(4, dtype=np.uint16), axis=0)
        with pytest.raises(Exception):
            bits.toggle_fraction_per_slice(
                np.zeros((2, 3), dtype=np.uint16), axis=0
            )


class TestBatchedHarness:
    def test_run_matches_per_seed_reference(self, quiet_config):
        """The batched runner is bit-for-bit the old seed-by-seed loop."""
        runner = ExperimentRunner(quiet_config(seeds=3))
        batched = runner.run()
        reference = [runner._run_seed(index) for index in range(3)]
        assert [m.as_dict() for m in batched.measurements] == [
            m.as_dict() for m in reference
        ]
