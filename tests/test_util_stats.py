"""Unit tests for repro.util.stats."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.util import stats


class TestSummarize:
    def test_basic_statistics(self):
        summary = stats.summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_value(self):
        summary = stats.summarize([5.0])
        assert summary.std == 0.0
        assert summary.sem == 0.0

    def test_empty_is_nan(self):
        summary = stats.summarize([])
        assert math.isnan(summary.mean)

    def test_ci95_contains_mean(self):
        summary = stats.summarize([10.0, 12.0, 11.0, 13.0])
        low, high = summary.ci95()
        assert low <= summary.mean <= high

    def test_as_dict_keys(self):
        d = stats.summarize([1.0, 2.0]).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "max", "sem"}


class TestConfidenceInterval:
    def test_symmetric_around_mean(self):
        low, high = stats.confidence_interval([2.0, 4.0, 6.0, 8.0])
        assert (low + high) / 2 == pytest.approx(5.0)

    def test_wider_at_higher_level(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low95, high95 = stats.confidence_interval(values, 0.95)
        low99, high99 = stats.confidence_interval(values, 0.99)
        assert (high99 - low99) > (high95 - low95)

    def test_invalid_level_raises(self):
        with pytest.raises(ValueError):
            stats.confidence_interval([1.0], level=1.5)


class TestTrimLeading:
    def test_trim_by_count(self):
        trimmed = stats.trim_leading([1, 2, 3, 4, 5], count=2)
        assert trimmed.tolist() == [3, 4, 5]

    def test_trim_by_fraction(self):
        trimmed = stats.trim_leading(list(range(10)), fraction=0.3)
        assert trimmed.tolist() == list(range(3, 10))

    def test_never_empties_series(self):
        trimmed = stats.trim_leading([1.0, 2.0], count=10)
        assert trimmed.size == 1

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            stats.trim_leading([1.0], fraction=1.0)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            stats.trim_leading([1.0], count=-1)


class TestRelativeChangeAndGeomean:
    def test_relative_change(self):
        assert stats.relative_change(100.0, 90.0) == pytest.approx(-0.1)

    def test_relative_change_zero_baseline(self):
        with pytest.raises(ValueError):
            stats.relative_change(0.0, 1.0)

    def test_geometric_mean(self):
        assert stats.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            stats.geometric_mean([1.0, 0.0])

    def test_geometric_mean_empty_is_nan(self):
        assert math.isnan(stats.geometric_mean([]))


class TestCorrelations:
    def test_pearson_perfect_positive(self):
        assert stats.pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_pearson_perfect_negative(self):
        assert stats.pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_pearson_constant_series_is_zero(self):
        assert stats.pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_pearson_shape_mismatch(self):
        with pytest.raises(ValueError):
            stats.pearson_correlation([1, 2], [1, 2, 3])

    def test_spearman_monotonic_nonlinear(self):
        x = [1, 2, 3, 4, 5]
        y = [math.exp(v) for v in x]
        assert stats.spearman_correlation(x, y) == pytest.approx(1.0)

    def test_pearson_short_series_nan(self):
        assert math.isnan(stats.pearson_correlation([1.0], [2.0]))
