"""Unit tests for repro.gpu.specs and repro.gpu.clocks."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.gpu.clocks import MIN_CLOCK_SCALE, ClockModel
from repro.gpu.specs import GPU_SPECS, PAPER_GPUS, get_gpu_spec, list_gpus, register_gpu_spec


class TestSpecDatabase:
    def test_paper_gpus_registered(self):
        for name in PAPER_GPUS:
            assert get_gpu_spec(name).name == name

    def test_tdp_values_match_paper(self):
        assert get_gpu_spec("a100").tdp_watts == 300.0
        assert get_gpu_spec("h100").tdp_watts == 700.0
        assert get_gpu_spec("v100").tdp_watts == 300.0
        assert get_gpu_spec("rtx6000").tdp_watts == 260.0

    def test_aliases(self):
        assert get_gpu_spec("A100-PCIe").name == "a100"
        assert get_gpu_spec("quadro-rtx-6000").name == "rtx6000"

    def test_unknown_gpu_raises(self):
        with pytest.raises(DeviceError):
            get_gpu_spec("b200")

    def test_pass_through(self):
        spec = get_gpu_spec("a100")
        assert get_gpu_spec(spec) is spec

    def test_list_gpus(self):
        names = list_gpus()
        assert set(PAPER_GPUS).issubset(names)
        assert names == sorted(names)

    def test_peak_throughput_ordering(self):
        # Tensor-core FP16 must be the fastest path on every paper GPU.
        for name in PAPER_GPUS:
            spec = get_gpu_spec(name)
            assert spec.peak_throughput("fp16_t") > spec.peak_throughput("fp16")
            assert spec.peak_throughput("fp16") > spec.peak_throughput("fp32")

    def test_unknown_dtype_throughput_raises(self):
        with pytest.raises(DeviceError):
            get_gpu_spec("a100").peak_throughput("fp4")

    def test_total_core_counts(self):
        spec = get_gpu_spec("a100")
        assert spec.total_cuda_cores == 108 * 64
        assert spec.total_tensor_cores == 108 * 4

    def test_scaled_copy(self):
        scaled = get_gpu_spec("a100").scaled(tdp_watts=250.0)
        assert scaled.tdp_watts == 250.0
        assert get_gpu_spec("a100").tdp_watts == 300.0

    def test_double_registration_rejected(self):
        with pytest.raises(DeviceError):
            register_gpu_spec(GPU_SPECS["a100"])

    def test_rtx6000_less_data_dependence(self):
        # The paper notes the RTX 6000 shows less pronounced swings.
        assert (
            get_gpu_spec("rtx6000").data_dependent_fraction
            < get_gpu_spec("a100").data_dependent_fraction
        )


class TestClockModel:
    def test_no_throttle_below_tdp(self):
        model = ClockModel(get_gpu_spec("a100"))
        state = model.resolve_throttle(idle_watts=50.0, dynamic_watts=200.0)
        assert not state.throttled
        assert state.clock_scale == 1.0
        assert state.constrained_power_watts == pytest.approx(250.0)

    def test_throttle_above_tdp(self):
        model = ClockModel(get_gpu_spec("a100"))
        state = model.resolve_throttle(idle_watts=50.0, dynamic_watts=400.0)
        assert state.throttled
        assert state.clock_scale < 1.0
        assert state.constrained_power_watts <= 300.0 + 1e-6
        assert state.unconstrained_power_watts == pytest.approx(450.0)

    def test_throttle_runtime_scale(self):
        model = ClockModel(get_gpu_spec("a100"))
        state = model.resolve_throttle(idle_watts=50.0, dynamic_watts=400.0)
        assert state.runtime_scale == pytest.approx(1.0 / state.clock_scale)
        assert state.runtime_scale > 1.0

    def test_explicit_power_limit(self):
        model = ClockModel(get_gpu_spec("a100"))
        state = model.resolve_throttle(idle_watts=50.0, dynamic_watts=200.0, power_limit_watts=150.0)
        assert state.throttled
        assert state.constrained_power_watts <= 150.0 + 1e-6

    def test_clock_scale_floor(self):
        model = ClockModel(get_gpu_spec("a100"))
        state = model.resolve_throttle(idle_watts=299.0, dynamic_watts=1000.0)
        assert state.clock_scale == pytest.approx(MIN_CLOCK_SCALE)

    def test_zero_dynamic_never_throttles(self):
        model = ClockModel(get_gpu_spec("a100"))
        state = model.resolve_throttle(idle_watts=500.0, dynamic_watts=0.0)
        assert not state.throttled

    def test_invalid_inputs(self):
        model = ClockModel(get_gpu_spec("a100"))
        with pytest.raises(DeviceError):
            model.resolve_throttle(idle_watts=50.0, dynamic_watts=-1.0)
        with pytest.raises(DeviceError):
            model.resolve_throttle(idle_watts=50.0, dynamic_watts=10.0, power_limit_watts=0.0)
        with pytest.raises(DeviceError):
            model.dynamic_power_at_scale(100.0, 0.0)

    def test_dynamic_power_scaling_quadratic(self):
        model = ClockModel(get_gpu_spec("a100"))
        assert model.dynamic_power_at_scale(100.0, 0.5) == pytest.approx(25.0)
