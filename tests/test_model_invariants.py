"""Cross-cutting invariants of the power/runtime pipeline.

These tests pin down properties that must hold for *any* input data, device
and datatype — the guarantees downstream users (optimizers, schedulers)
rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.activity.engine import activity_from_matrices
from repro.dtypes.registry import PAPER_DTYPES
from repro.gpu.device import Device
from repro.gpu.specs import PAPER_GPUS
from repro.kernels.gemm import GemmProblem
from repro.kernels.launch import plan_launch
from repro.optimize.estimation import quick_power_estimate
from repro.patterns.library import PATTERN_FAMILIES, build_pattern
from repro.power.model import MAX_ACTIVITY_FACTOR, PowerModel
from repro.runtime.model import RuntimeModel
from repro.util.rng import derive_rng

SIZE = 96


def _matrices(family: str, dtype: str, **params):
    pattern = build_pattern(family, dtype, **params)
    a = pattern.generate((SIZE, SIZE), dtype, derive_rng(1, family, dtype, "A"))
    b = pattern.generate((SIZE, SIZE), dtype, derive_rng(1, family, dtype, "B"))
    return a, b


class TestPowerBounds:
    @pytest.mark.parametrize("gpu", PAPER_GPUS)
    @pytest.mark.parametrize("dtype", PAPER_DTYPES)
    def test_power_between_idle_and_tdp(self, gpu, dtype):
        device = Device.create(gpu)
        a, b = _matrices("gaussian", dtype)
        estimate = quick_power_estimate(a, b, dtype=dtype, gpu=device)
        assert device.idle_watts - 1e-6 <= estimate.power_watts <= device.tdp_watts + 1e-6

    @pytest.mark.parametrize("family", sorted(PATTERN_FAMILIES))
    def test_every_pattern_family_yields_valid_estimate(self, family):
        a, b = _matrices(family, "fp16_t")
        estimate = quick_power_estimate(a, b, dtype="fp16_t", gpu="a100")
        assert np.isfinite(estimate.power_watts)
        assert 0.0 <= estimate.activity_factor <= MAX_ACTIVITY_FACTOR
        assert estimate.iteration_time_s > 0.0
        assert estimate.iteration_energy_j > 0.0

    def test_all_zero_inputs_give_minimum_power(self):
        device = Device.create("a100")
        zeros = quick_power_estimate(
            np.zeros((SIZE, SIZE)), np.zeros((SIZE, SIZE)), gpu=device
        ).power_watts
        for family in ("gaussian", "sorted_rows", "constant_random", "value_set"):
            a, b = _matrices(family, "fp16_t")
            assert quick_power_estimate(a, b, gpu=device).power_watts >= zeros - 1e-9


class TestActivityMonotonicity:
    def test_power_is_monotone_in_activity_factor(self):
        """Feeding a strictly larger activity report must not lower power."""
        device = Device.create("a100")
        launch = plan_launch(GemmProblem.square(512, dtype="fp16_t"), device)
        model = PowerModel(device)
        a, b = _matrices("gaussian", "fp16_t")
        dense = activity_from_matrices(a, b, dtype="fp16_t")
        sparse_a = np.where(derive_rng(3).random(a.shape) < 0.7, 0.0, a)
        sparse = activity_from_matrices(sparse_a, b, dtype="fp16_t")
        dense_power = model.estimate(launch, dense, include_process_variation=False).watts
        sparse_power = model.estimate(launch, sparse, include_process_variation=False).watts
        assert model.activity_factor(sparse) <= model.activity_factor(dense)
        assert sparse_power <= dense_power

    def test_component_breakdown_sums_below_data_budget(self):
        device = Device.create("a100")
        launch = plan_launch(GemmProblem.square(512, dtype="fp16_t"), device)
        model = PowerModel(device)
        a, b = _matrices("gaussian", "fp16_t")
        estimate = model.estimate(
            launch, activity_from_matrices(a, b, dtype="fp16_t"), include_process_variation=False
        )
        components_total = sum(estimate.component_breakdown.values())
        budget = model.components("fp16_t").data_dependent_watts * MAX_ACTIVITY_FACTOR
        assert components_total <= budget + 1e-6


class TestThrottleInvariants:
    def test_throttled_power_never_exceeds_limit(self):
        device = Device.create("a100")
        launch = plan_launch(GemmProblem.square(2048, dtype="fp16_t"), device)
        model = PowerModel(device)
        a, b = _matrices("gaussian", "fp16_t")
        activity = activity_from_matrices(a, b, dtype="fp16_t")
        for limit in (120.0, 180.0, 250.0, 400.0):
            estimate = model.estimate(
                launch, activity, power_limit_watts=limit, include_process_variation=False
            )
            assert estimate.watts <= limit + 1e-6 or not estimate.throttled

    def test_throttling_extends_runtime(self):
        device = Device.create("a100")
        launch = plan_launch(GemmProblem.square(2048, dtype="fp16_t"), device)
        model = PowerModel(device)
        runtime_model = RuntimeModel()
        a, b = _matrices("gaussian", "fp16_t")
        activity = activity_from_matrices(a, b, dtype="fp16_t")
        free = model.estimate(launch, activity, include_process_variation=False)
        capped = model.estimate(
            launch, activity, power_limit_watts=150.0, include_process_variation=False
        )
        free_runtime = runtime_model.estimate(launch, clock_scale=free.clock_scale)
        capped_runtime = runtime_model.estimate(launch, clock_scale=capped.clock_scale)
        assert capped_runtime.iteration_time_s > free_runtime.iteration_time_s


class TestCrossDeviceConsistency:
    def test_same_inputs_same_activity_on_every_device(self):
        """Activity is a property of the data, not of the device."""
        a, b = _matrices("sorted_rows", "fp16", fraction=1.0)
        reference = activity_from_matrices(a, b, dtype="fp16")
        again = activity_from_matrices(a, b, dtype="fp16")
        assert reference.operand_activity == pytest.approx(again.operand_activity)
        assert reference.multiplier_activity == pytest.approx(again.multiplier_activity)

    @pytest.mark.parametrize("gpu", PAPER_GPUS)
    def test_sorting_helps_on_every_gpu(self, gpu):
        device = Device.create(gpu)
        random_a, random_b = _matrices("gaussian", "fp16")
        sorted_a, sorted_b = _matrices("sorted_rows", "fp16", fraction=1.0)
        random_power = quick_power_estimate(random_a, random_b, dtype="fp16", gpu=device).power_watts
        sorted_power = quick_power_estimate(sorted_a, sorted_b, dtype="fp16", gpu=device).power_watts
        assert sorted_power < random_power
