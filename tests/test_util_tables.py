"""Unit tests for repro.util.tables and repro.util.validation and logging."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util import tables, validation
from repro.util.logging import enable_console_logging, get_logger


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = tables.format_table(["a", "b"], [[1, 2.5], [3, 4.25]])
        assert "a" in text and "b" in text
        assert "2.500" in text and "4.250" in text

    def test_title_rendered(self):
        text = tables.format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            tables.format_table(["a", "b"], [[1]])

    def test_precision_respected(self):
        text = tables.format_table(["v"], [[3.14159]], precision=1)
        assert "3.1" in text and "3.14" not in text

    def test_column_alignment(self):
        text = tables.format_table(["name", "value"], [["x", 1], ["longer", 2]])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines[:2])) == 1


class TestFormatSeriesChart:
    def test_contains_marker_and_legend(self):
        text = tables.format_series_chart([0, 1, 2], {"power": [10.0, 20.0, 15.0]})
        assert "* = power" in text
        assert "*" in text

    def test_multiple_series_get_distinct_markers(self):
        text = tables.format_series_chart(
            [0, 1], {"one": [1.0, 2.0], "two": [2.0, 1.0]}
        )
        assert "* = one" in text and "o = two" in text

    def test_empty_series_returns_title(self):
        assert tables.format_series_chart([], {}, title="t") == "t"

    def test_constant_series_does_not_crash(self):
        text = tables.format_series_chart([0, 1, 2], {"flat": [5.0, 5.0, 5.0]})
        assert "flat" in text

    def test_small_dimensions_rejected(self):
        with pytest.raises(ValueError):
            tables.format_series_chart([0], {"s": [1.0]}, width=2, height=2)


class TestFormatKv:
    def test_alignment_and_values(self):
        text = tables.format_kv({"short": 1, "much_longer_key": 2.5})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty_returns_title(self):
        assert tables.format_kv({}, title="hello") == "hello"


class TestValidation:
    def test_require_positive(self):
        assert validation.require_positive(1.5, "x") == 1.5
        with pytest.raises(ConfigurationError):
            validation.require_positive(0, "x")

    def test_require_non_negative(self):
        assert validation.require_non_negative(0, "x") == 0
        with pytest.raises(ConfigurationError):
            validation.require_non_negative(-1, "x")

    def test_require_in_range(self):
        assert validation.require_in_range(5, 0, 10, "x") == 5
        with pytest.raises(ConfigurationError):
            validation.require_in_range(11, 0, 10, "x")

    def test_require_fraction(self):
        assert validation.require_fraction(0.5, "x") == 0.5
        with pytest.raises(ConfigurationError):
            validation.require_fraction(1.5, "x")

    def test_require_one_of(self):
        assert validation.require_one_of("a", ["a", "b"], "x") == "a"
        with pytest.raises(ConfigurationError):
            validation.require_one_of("c", ["a", "b"], "x")

    def test_require_matrix(self):
        mat = validation.require_matrix(np.ones((2, 3)), "m")
        assert mat.shape == (2, 3)
        with pytest.raises(ConfigurationError):
            validation.require_matrix(np.ones(3), "m")
        with pytest.raises(ConfigurationError):
            validation.require_matrix(np.ones((0, 3)), "m")

    def test_require_power_of_two(self):
        assert validation.require_power_of_two(64, "n") == 64
        with pytest.raises(ConfigurationError):
            validation.require_power_of_two(48, "n")
        with pytest.raises(ConfigurationError):
            validation.require_power_of_two(0, "n")


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("activity").name == "repro.activity"
        assert get_logger("repro.power").name == "repro.power"

    def test_enable_console_logging_idempotent(self):
        logger = enable_console_logging(logging.WARNING)
        handler_count = len(logger.handlers)
        enable_console_logging(logging.WARNING)
        assert len(logger.handlers) == handler_count
