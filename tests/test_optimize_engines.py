"""Tests for the repro.optimize.engines subsystem.

Covers the engine protocol properties the subsystem promises (analytic
convergence, monotone bracket shrinkage, bit-for-bit checkpoint/resume,
fixed-seed determinism), the runner's cache collapse and constraint
handling, the bisection-backed ``find_sparsity_for_cap`` equivalence
with the retired ad-hoc loop, the ``python -m repro.optimize`` CLI
(including ``--expect`` replay), and a chaos leg running an engine with
faulty disk caches.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.activity import SamplingConfig
from repro.cache.store import ActivityCache, ExperimentCache
from repro.errors import OptimizationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.plan import PlanCache
from repro.optimize.engines import (
    BisectionEngine,
    Constraint,
    Dimension,
    Evaluation,
    NelderMeadEngine,
    OptimizationResult,
    OptimizationRunner,
    ParameterSpace,
    RandomRefineEngine,
    engine_from_state,
    get_engine,
    list_engines,
    run_study,
)
from repro.optimize.__main__ import main as optimize_main
from repro.telemetry import TelemetryConfig

DATA_DIR = Path(__file__).parent / "data"


def quadratic(x0: float, y0: float):
    return lambda p: (p["x"] - x0) ** 2 + (p["y"] - y0) ** 2


def space_2d() -> ParameterSpace:
    return ParameterSpace(
        [
            Dimension(name="x", low=-2.0, high=2.0),
            Dimension(name="y", low=-2.0, high=2.0),
        ]
    )


def space_1d(low: float = 0.0, high: float = 1.0) -> ParameterSpace:
    return ParameterSpace([Dimension(name="x", low=low, high=high)])


def quiet_base() -> ExperimentConfig:
    return ExperimentConfig(
        pattern_family="sparsity",
        pattern_params={"sparsity": 0.0},
        matrix_size=128,
        seeds=1,
        iterations=200,
        sampling=SamplingConfig(output_samples=64),
        telemetry=TelemetryConfig(noise_std_watts=0.0, drift_watts=0.0),
    )


def quiet_study(engine: str = "nelder_mead", **engine_params) -> dict:
    params = {"seed": 0, "max_iterations": 10} if engine == "nelder_mead" else {}
    params.update(engine_params)
    return {
        "format": "repro.optimize.study/v1",
        "engine": engine,
        "engine_params": params,
        "space": [{"name": "sparsity", "low": 0.0, "high": 0.95}],
        "base_config": {
            "pattern_family": "sparsity",
            "pattern_params": {"sparsity": 0.0},
            "matrix_size": 128,
            "seeds": 1,
            "iterations": 200,
            "sampling": {"output_samples": 64},
            "telemetry": {"noise_std_watts": 0.0, "drift_watts": 0.0},
        },
        "objective": {"metric": "mean_power_watts", "mode": "min"},
    }


def fresh_caches() -> dict:
    return {
        "cache": ExperimentCache(),
        "activity_cache": ActivityCache(),
        "plan_cache": PlanCache(),
    }


class TestRegistry:
    def test_all_three_engines_registered(self):
        assert list_engines() == ["bisection", "nelder_mead", "random"]

    def test_get_engine_unknown_raises(self):
        with pytest.raises(OptimizationError, match="unknown engine"):
            get_engine("gradient_descent")

    def test_engine_from_state_dispatches_on_name(self):
        engine = RandomRefineEngine(space_2d(), seed=5, rounds=2)
        rebuilt = engine_from_state(engine.state_dict())
        assert isinstance(rebuilt, RandomRefineEngine)
        assert rebuilt.propose() == engine.propose()


class TestParameterSpace:
    def test_clip_rounds_and_bounds(self):
        space = ParameterSpace(
            [
                Dimension(name="sparsity", low=0.0, high=0.9),
                Dimension(name="matrix_size", low=64, high=512, target="matrix_size"),
            ]
        )
        clipped = space.clip({"sparsity": 1.5, "matrix_size": 127.4})
        assert clipped == {"sparsity": 0.9, "matrix_size": 127.0}

    def test_unknown_and_missing_dimensions_rejected(self):
        space = space_1d()
        with pytest.raises(OptimizationError, match="unknown dimension"):
            space.clip({"x": 0.5, "z": 1.0})
        with pytest.raises(OptimizationError, match="missing dimension"):
            space.clip({})

    def test_to_config_writes_pattern_params_and_fields(self):
        space = ParameterSpace(
            [
                Dimension(name="sparsity", low=0.0, high=0.9),
                Dimension(name="matrix_size", low=64, high=512, target="matrix_size"),
            ]
        )
        base = quiet_base()
        config = space.to_config({"sparsity": 0.25, "matrix_size": 256.0}, base)
        assert config.pattern_params["sparsity"] == 0.25
        assert config.matrix_size == 256
        assert isinstance(config.matrix_size, int)
        assert base.pattern_params["sparsity"] == 0.0  # base untouched

    def test_bad_target_rejected(self):
        with pytest.raises(OptimizationError, match="target"):
            Dimension(name="x", low=0.0, high=1.0, target="dtype")

    def test_round_trip(self):
        space = space_2d()
        assert ParameterSpace.from_dict(space.as_dict()).as_dict() == space.as_dict()


class TestNelderMead:
    @settings(max_examples=25, deadline=None)
    @given(
        x0=st.floats(-1.5, 1.5),
        y0=st.floats(-1.5, 1.5),
        seed=st.integers(0, 1_000),
    )
    # Regression: hard-clipping out-of-box proposals collapsed every
    # vertex onto the y=-2 face here, sticking the simplex one
    # dimension short of the interior optimum.
    @example(x0=1.0, y0=-1.0, seed=0)
    def test_converges_to_analytic_optimum(self, x0, y0, seed):
        engine = NelderMeadEngine(space_2d(), seed=seed, max_iterations=200, xtol=1e-4)
        result = OptimizationRunner(engine, quadratic(x0, y0)).run()
        assert result.converged
        assert result.best_objective == pytest.approx(0.0, abs=1e-3)
        assert result.best_point["x"] == pytest.approx(x0, abs=0.05)
        assert result.best_point["y"] == pytest.approx(y0, abs=0.05)

    def test_fixed_seed_is_deterministic(self):
        results = [
            OptimizationRunner(
                NelderMeadEngine(space_2d(), seed=11, max_iterations=40),
                quadratic(0.3, -0.7),
            ).run()
            for _ in range(2)
        ]
        assert results[0].summary() == results[1].summary()
        assert [r.as_dict() for r in results[0].iterations] == [
            r.as_dict() for r in results[1].iterations
        ]

    def test_different_seeds_differ(self):
        proposals = {
            json.dumps(NelderMeadEngine(space_2d(), seed=seed).propose())
            for seed in range(4)
        }
        assert len(proposals) == 4

    @settings(max_examples=15, deadline=None)
    @given(interrupt=st.integers(1, 30), seed=st.integers(0, 100))
    def test_checkpoint_resume_bit_for_bit(self, interrupt, seed):
        objective = quadratic(-0.4, 0.9)
        straight = OptimizationRunner(
            NelderMeadEngine(space_2d(), seed=seed, max_iterations=40), objective
        )
        reference = straight.run()

        resumed_runner = OptimizationRunner(
            NelderMeadEngine(space_2d(), seed=seed, max_iterations=40), objective
        )
        for _ in range(interrupt):
            if resumed_runner.step() is None:
                break
        # JSON round-trip the checkpoint: what resume would read from disk.
        payload = json.loads(json.dumps(resumed_runner.checkpoint()))
        resumed = OptimizationRunner.from_checkpoint(payload, objective=objective).run()
        assert resumed.summary() == reference.summary()
        assert [r.as_dict() for r in resumed.iterations] == [
            r.as_dict() for r in reference.iterations
        ]

    def test_initial_point_is_respected(self):
        engine = NelderMeadEngine(space_2d(), initial_point={"x": 0.5, "y": 0.5})
        first = engine.propose()[0]
        assert first == {"x": 0.5, "y": 0.5}

    def test_ingest_out_of_order_rejected(self):
        engine = NelderMeadEngine(space_2d(), seed=0)
        batch = engine.propose()
        wrong = [Evaluation(point={"x": 9.0, "y": 9.0}, objective=0.0)] * len(batch)
        with pytest.raises(OptimizationError, match="out of order"):
            engine.ingest(wrong)


class TestBisection:
    @settings(max_examples=40, deadline=None)
    @given(
        boundary=st.floats(0.05, 0.95),
        tolerance=st.floats(1e-4, 0.2),
    )
    def test_bracket_shrinks_monotonically_onto_boundary(self, boundary, tolerance):
        # f(x) = 1 - x is decreasing; f(x) <= target iff x >= 1 - target.
        target = 1.0 - boundary
        engine = BisectionEngine(
            space_1d(), target=target, tolerance=tolerance, max_iterations=60
        )
        runner = OptimizationRunner(engine, lambda p: 1.0 - p["x"])
        widths = [engine.bracket[1] - engine.bracket[0]]
        while runner.step() is not None:
            widths.append(engine.bracket[1] - engine.bracket[0])
        assert all(b <= a for a, b in zip(widths, widths[1:]))
        low, high = engine.bracket
        assert engine.feasible
        assert low <= boundary <= high + tolerance
        best_x = engine.best.point["x"]
        assert best_x >= boundary - 1e-12
        assert best_x - boundary <= max(tolerance, (1.0 - boundary) / 2**60) + 1e-12

    def test_trivial_end_feasible_stops_immediately(self):
        engine = BisectionEngine(space_1d(), target=2.0)
        runner = OptimizationRunner(engine, lambda p: 1.0 - p["x"])
        result = runner.run()
        assert result.evaluations == 1
        assert result.best_point == {"x": 0.0}
        assert result.best_feasible

    def test_infeasible_target_keeps_best_attempt(self):
        engine = BisectionEngine(space_1d(), target=-1.0)
        result = OptimizationRunner(engine, lambda p: 1.0 - p["x"]).run()
        assert result.evaluations == 2
        assert not result.best_feasible
        assert result.best_point == {"x": 1.0}  # the far (most feasible) end

    def test_increasing_direction(self):
        engine = BisectionEngine(
            space_1d(), target=0.5, direction="increasing", tolerance=1e-3
        )
        OptimizationRunner(engine, lambda p: p["x"]).run()
        assert engine.feasible
        assert engine.best.point["x"] == pytest.approx(0.5, abs=2e-3)

    def test_requires_one_dimension(self):
        with pytest.raises(OptimizationError, match="one-dimensional"):
            BisectionEngine(space_2d(), target=0.0)

    def test_checkpoint_resume_bit_for_bit(self):
        objective = lambda p: 1.0 - p["x"]  # noqa: E731
        straight = OptimizationRunner(
            BisectionEngine(space_1d(), target=0.33, tolerance=1e-3), objective
        ).run()
        runner = OptimizationRunner(
            BisectionEngine(space_1d(), target=0.33, tolerance=1e-3), objective
        )
        runner.step()
        runner.step()
        payload = json.loads(json.dumps(runner.checkpoint()))
        resumed = OptimizationRunner.from_checkpoint(payload, objective=objective).run()
        assert resumed.summary() == straight.summary()


class TestRandomRefine:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_refinement_never_worsens_and_lands_near_optimum(self, seed):
        engine = RandomRefineEngine(space_2d(), seed=seed, rounds=8, batch_size=16)
        runner = OptimizationRunner(engine, quadratic(0.5, -0.25))
        bests = []
        while runner.step() is not None:
            bests.append(engine.best.objective)
        assert bests == sorted(bests, reverse=True)
        assert bests[-1] < 0.05

    def test_fixed_seed_is_deterministic(self):
        runs = [
            OptimizationRunner(
                RandomRefineEngine(space_2d(), seed=9, rounds=3), quadratic(0.0, 0.0)
            ).run()
            for _ in range(2)
        ]
        assert runs[0].summary() == runs[1].summary()

    def test_grid_mode_covers_box_corners(self):
        engine = RandomRefineEngine(space_2d(), mode="grid", batch_size=4, rounds=1)
        points = engine.propose()
        xs = {p["x"] for p in points}
        ys = {p["y"] for p in points}
        assert xs == {-2.0, 2.0} and ys == {-2.0, 2.0}

    def test_checkpoint_resume_bit_for_bit(self):
        objective = quadratic(1.0, 1.0)
        straight = OptimizationRunner(
            RandomRefineEngine(space_2d(), seed=4, rounds=5), objective
        ).run()
        runner = OptimizationRunner(
            RandomRefineEngine(space_2d(), seed=4, rounds=5), objective
        )
        runner.step()
        runner.step()
        payload = json.loads(json.dumps(runner.checkpoint()))
        resumed = OptimizationRunner.from_checkpoint(payload, objective=objective).run()
        assert resumed.summary() == straight.summary()


class TestRunner:
    def test_config_objective_warm_replay_executes_zero_engine_runs(self):
        caches = fresh_caches()
        cold = run_study(quiet_study(), **caches)
        assert cold.engine_runs > 0
        warm = run_study(quiet_study(), **caches)
        assert warm.engine_runs == 0
        assert warm.cache_hits == warm.evaluations
        assert warm.summary() == cold.summary()

    def test_run_stats_recorded_per_iteration(self):
        result = run_study(quiet_study(), **fresh_caches())
        assert result.iterations
        for record in result.iterations:
            stats = record.run_stats
            assert set(stats) == {"total", "unique", "cache_hits", "executed"}
            assert stats["total"] == len(record.proposals)

    def test_real_objective_prefers_sparser_point(self):
        # T12: power decreases with sparsity, so the optimum is the
        # sparsest corner of the box.
        result = run_study(quiet_study(), **fresh_caches())
        assert result.converged
        assert result.best_point["sparsity"] == pytest.approx(0.95)

    def test_constraint_penalty_steers_engine(self):
        constraint = Constraint(metric="objective", lower=0.5, mode="penalty", weight=10.0)
        runner = OptimizationRunner(
            NelderMeadEngine(space_1d(), seed=0, max_iterations=60, xtol=1e-4),
            lambda p: p["x"],
            constraint=constraint,
        )
        result = runner.run()
        # Unconstrained optimum is x=0; the lower bound pushes it to 0.5.
        assert result.best_metrics["objective"] == pytest.approx(0.5, abs=0.02)

    def test_constraint_filter_marks_infeasible_as_null(self):
        constraint = Constraint(metric="objective", lower=0.5, mode="filter")
        runner = OptimizationRunner(
            RandomRefineEngine(space_1d(), seed=1, rounds=2, batch_size=8),
            lambda p: p["x"],
            constraint=constraint,
        )
        result = runner.run()
        flattened = [
            (obj, feas)
            for record in result.iterations
            for obj, feas in zip(record.objectives, record.feasible)
        ]
        assert any(not feas for _, feas in flattened)
        for obj, feas in flattened:
            if not feas:
                assert obj == float("inf")
        payload = json.loads(json.dumps(result.as_dict()))
        for record in payload["iterations"]:
            for obj, feas in zip(record["objectives"], record["feasible"]):
                if not feas:
                    assert obj is None  # inf serializes as null

    def test_callable_objective_rejects_metric_constraints(self):
        with pytest.raises(OptimizationError, match="objective"):
            OptimizationRunner(
                NelderMeadEngine(space_1d(), seed=0),
                lambda p: p["x"],
                constraint=Constraint(metric="mean_power_watts", upper=1.0),
            )

    def test_config_objective_checkpoint_is_self_contained(self, tmp_path):
        caches = fresh_caches()
        straight = run_study(quiet_study(), **caches)
        from repro.optimize.engines import build_runner

        runner = build_runner(quiet_study(), **caches)
        runner.step()
        ckpt = tmp_path / "ckpt.json"
        runner.save_checkpoint(ckpt)
        resumed = OptimizationRunner.from_checkpoint(ckpt, **caches).run()
        assert resumed.summary() == straight.summary()

    def test_unknown_study_fields_rejected(self):
        study = quiet_study()
        study["objectivee"] = {}
        with pytest.raises(OptimizationError, match="unknown study field"):
            run_study(study, **fresh_caches())

    def test_result_json_round_trip(self, tmp_path):
        result = run_study(quiet_study(), **fresh_caches())
        path = result.save_json(tmp_path / "result.json")
        loaded = OptimizationResult.load(path)
        assert loaded.summary() == result.summary()
        assert loaded.as_dict() == result.as_dict()


class TestPowerCappingEquivalence:
    """The bisection-backed search must match the retired ad-hoc loop."""

    @staticmethod
    def legacy_loop(activations, weights, power_cap_watts, max_sparsity=0.95,
                    tolerance=0.01, max_iterations=12):
        """Inline replica of the pre-engine find_sparsity_for_cap loop."""
        from repro.optimize.estimation import quick_power_estimate
        from repro.optimize.sparsity_design import magnitude_prune

        weights = np.asarray(weights, dtype=np.float64)
        activations = np.asarray(activations, dtype=np.float64)
        baseline = quick_power_estimate(activations, weights)

        def evaluate(sparsity):
            mask = magnitude_prune(weights, sparsity)
            pruned = np.where(mask, weights, 0.0)
            return quick_power_estimate(activations, pruned), pruned

        if baseline.power_watts <= power_cap_watts:
            return (0.0, True, baseline.power_watts, 0.0)
        max_estimate, max_pruned = evaluate(max_sparsity)
        denom = float(np.linalg.norm(weights)) or 1.0
        if max_estimate.power_watts > power_cap_watts:
            return (
                max_sparsity, False, max_estimate.power_watts,
                float(np.linalg.norm(max_pruned - weights)) / denom,
            )
        low, high = 0.0, max_sparsity
        best_estimate, best_pruned, best_sparsity = max_estimate, max_pruned, max_sparsity
        for _ in range(max_iterations):
            mid = 0.5 * (low + high)
            estimate, pruned = evaluate(mid)
            if estimate.power_watts <= power_cap_watts:
                best_estimate, best_pruned, best_sparsity = estimate, pruned, mid
                high = mid
            else:
                low = mid
            if high - low <= tolerance:
                break
        return (
            float(best_sparsity), True, best_estimate.power_watts,
            float(np.linalg.norm(best_pruned - weights)) / denom,
        )

    def test_bit_for_bit_across_cap_regimes(self, rng):
        from repro.optimize.estimation import quick_power_estimate
        from repro.optimize.power_capping import find_sparsity_for_cap

        activations = rng.normal(size=(48, 48))
        weights = rng.normal(size=(48, 48))
        dense = quick_power_estimate(activations, weights).power_watts
        for fraction in (1.1, 0.98, 0.9, 0.6, 0.3, 0.01):
            cap = dense * fraction
            want = self.legacy_loop(activations, weights, cap)
            plan = find_sparsity_for_cap(activations, weights, cap)
            got = (plan.sparsity, plan.feasible, plan.capped.power_watts, plan.relative_error)
            assert got == want, f"divergence at cap fraction {fraction}"


class TestCli:
    def test_run_out_history_and_expect(self, tmp_path, capsys):
        study_path = DATA_DIR / "optimize_study.json"
        golden = DATA_DIR / "optimize_golden_summary.json"
        out = tmp_path / "result.json"

        assert optimize_main(
            ["run", str(study_path), "--no-cache", "--out", str(out),
             "--expect", str(golden)]
        ) == 0
        assert "replay OK" in capsys.readouterr().out
        assert out.exists()

        assert optimize_main(["history", str(out), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary == json.loads(golden.read_text())

    def test_expect_mismatch_fails_with_diff(self, tmp_path, capsys):
        study_path = DATA_DIR / "optimize_study.json"
        wrong = json.loads((DATA_DIR / "optimize_golden_summary.json").read_text())
        wrong["best_objective"] = -1.0
        expect = tmp_path / "wrong.json"
        expect.write_text(json.dumps(wrong))
        assert optimize_main(
            ["run", str(study_path), "--no-cache", "--expect", str(expect)]
        ) == 1
        err = capsys.readouterr().err
        assert "replay MISMATCH" in err
        assert "best_objective" in err

    def test_interrupted_run_resumes_to_identical_summary(self, tmp_path, capsys):
        study_path = DATA_DIR / "optimize_study.json"
        golden = json.loads((DATA_DIR / "optimize_golden_summary.json").read_text())
        ckpt = tmp_path / "ckpt.json"
        # Interrupt after 3 evaluations, then resume from the checkpoint.
        assert optimize_main(
            ["run", str(study_path), "--no-cache", "--checkpoint", str(ckpt),
             "--max-evaluations", "3", "--json"]
        ) == 0
        partial = json.loads(capsys.readouterr().out)
        assert partial["evaluations"] <= golden["evaluations"]
        assert optimize_main(["resume", str(ckpt), "--no-cache", "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed == golden

    def test_error_paths_exit_nonzero(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{\"format\": \"nope\"}")
        assert optimize_main(["run", str(bogus)]) == 1
        assert "error:" in capsys.readouterr().err
        assert optimize_main(["history", str(tmp_path / "missing.json")]) == 1


class TestChaos:
    @pytest.mark.parametrize("faults_seed", ["0", "20240817"])
    def test_engine_result_survives_cache_faults(self, tmp_path, monkeypatch, faults_seed):
        import repro.faults as faults

        reference = run_study(
            quiet_study(), cache=None, activity_cache=None, plan_cache=None
        )
        cache = ExperimentCache(disk_dir=tmp_path / "exp")
        activity_cache = ActivityCache(disk_dir=tmp_path / "act")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "cache.sqlite.read:busy@0.3;cache.sqlite.write:busy@0.3",
        )
        monkeypatch.setenv("REPRO_FAULTS_SEED", faults_seed)
        faults.reset()
        try:
            survived = run_study(
                quiet_study(), cache=cache, activity_cache=activity_cache,
                plan_cache=PlanCache(),
            )
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            monkeypatch.delenv("REPRO_FAULTS_SEED")
            faults.reset()
        # Faults degrade the disk tier, never the trajectory.
        assert survived.summary() == reference.summary()
