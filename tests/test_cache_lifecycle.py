"""Tests for the activity cache tier, disk-cache lifecycle management and
the sweep/cache robustness fixes (atomic writes, worker cleanup, GC, CLI)."""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.activity import engine as engine_module
from repro.activity.report import ActivityReport
from repro.cache.__main__ import main as cache_cli
from repro.cache.fingerprint import activity_fingerprint, experiment_fingerprint
from repro.cache.lifecycle import (
    cache_dir_stats,
    clear_cache_dir,
    format_size,
    parse_size,
    prune_cache_dir,
    scan_cache_dir,
)
from repro.cache.store import (
    ActivityCache,
    ExperimentCache,
    get_default_activity_cache,
    get_default_cache,
    resolve_activity_cache,
)
from repro.errors import ActivityError, ExperimentError
from repro.experiments.harness import run_experiment
from repro.experiments.sweep import run_configs


def _make_report(value: float = 0.5) -> ActivityReport:
    return ActivityReport(
        operand_activity=value,
        multiplier_activity=value,
        datapath_activity=value,
        memory_activity=value,
        operand_toggle_a=value,
        operand_toggle_b=value,
        multiplier_hw_product=value,
        zero_mac_fraction=value,
        product_toggle=value,
        accumulator_toggle=value,
        memory_toggle=value,
        a_hamming_fraction=value,
        b_hamming_fraction=value,
        bit_alignment=value,
        dtype="fp16_t",
        shape=(8, 8, 8),
        output_samples=4,
    )


def _hammer_puts(args: tuple[str, int, int, str]) -> int:
    """Worker for the concurrency test: interleaved puts on shared keys."""
    directory, worker_id, rounds, backend = args
    cache = ActivityCache(disk_dir=directory, disk_backend=backend)
    for index in range(rounds):
        cache.put(f"key{index % 8}", _make_report(0.25 + worker_id * 0.1 + index * 1e-6))
    return cache.stats.disk_errors


@pytest.fixture
def count_estimations(monkeypatch):
    """Count invocations actually estimated (not served from a cache)."""
    calls = {"invocations": 0}
    original = engine_module._estimate_stacked

    def counting(stacked, sampling, seeds):
        calls["invocations"] += stacked.batch
        return original(stacked, sampling, seeds)

    monkeypatch.setattr(engine_module, "_estimate_stacked", counting)
    return calls


@pytest.fixture
def reset_default_caches(monkeypatch):
    """Fresh, uninitialized default-cache state, restored afterwards."""
    import repro.cache.store as store

    saved = (
        store._default_cache,
        store._default_initialized,
        store._default_activity_cache,
        store._default_activity_initialized,
        store._auto_pruned,
    )
    store._default_cache = None
    store._default_initialized = False
    store._default_activity_cache = None
    store._default_activity_initialized = False
    store._auto_pruned = False
    yield store
    (
        store._default_cache,
        store._default_initialized,
        store._default_activity_cache,
        store._default_activity_initialized,
        store._auto_pruned,
    ) = saved


class TestActivityFingerprint:
    def test_excludes_device_and_measurement_knobs(self, quiet_config):
        from repro.telemetry.sampler import TelemetryConfig

        base = activity_fingerprint(quiet_config(), seed=0)
        assert activity_fingerprint(quiet_config(gpu="h100"), seed=0) == base
        assert activity_fingerprint(quiet_config(iterations=999), seed=0) == base
        assert activity_fingerprint(quiet_config(warmup_trim_s=0.1), seed=0) == base
        assert activity_fingerprint(quiet_config(seeds=5), seed=0) == base
        assert activity_fingerprint(quiet_config(instance_id=3), seed=0) == base
        assert (
            activity_fingerprint(
                quiet_config(telemetry=TelemetryConfig(noise_std_watts=3.0)), seed=0
            )
            == base
        )
        assert (
            activity_fingerprint(
                quiet_config(include_process_variation=True), seed=0
            )
            == base
        )

    def test_sensitive_to_workload_and_seed(self, quiet_config):
        from repro.activity.sampler import SamplingConfig

        base = activity_fingerprint(quiet_config(), seed=0)
        assert activity_fingerprint(quiet_config(), seed=1) != base
        assert activity_fingerprint(quiet_config(matrix_size=256), seed=0) != base
        assert activity_fingerprint(quiet_config(base_seed=7), seed=0) != base
        assert activity_fingerprint(quiet_config(transpose_b=False), seed=0) != base
        assert activity_fingerprint(quiet_config(dtype="fp16"), seed=0) != base
        assert (
            activity_fingerprint(quiet_config(pattern_family="sparsity"), seed=0)
            != base
        )
        assert (
            activity_fingerprint(
                quiet_config(sampling=SamplingConfig(output_samples=16)), seed=0
            )
            != base
        )

    def test_differs_from_experiment_fingerprint(self, quiet_config):
        config = quiet_config()
        assert activity_fingerprint(config, seed=0) != experiment_fingerprint(
            config, seed=0
        )


class TestActivityCacheTier:
    def test_stores_reports_and_rejects_other_values(self, tmp_path):
        cache = ActivityCache(disk_dir=tmp_path)
        report = _make_report()
        cache.put("k", report)
        assert cache.get("k") == report
        with pytest.raises(ExperimentError):
            cache.put("k", {"not": "a report"})
        with pytest.raises(ExperimentError):
            resolve_activity_cache("bogus")

    def test_disk_round_trip_is_bit_exact(self, tmp_path):
        report = _make_report(0.123456789012345678)
        ActivityCache(disk_dir=tmp_path).put("k", report)
        loaded = ActivityCache(disk_dir=tmp_path).get("k")
        assert loaded == report  # dataclass equality: every float bit-exact

    def test_cached_experiment_is_bit_identical_to_cold(self, quiet_config):
        config = quiet_config(seeds=2)
        warm_cache = ActivityCache()
        first = run_experiment(config, cache=None, activity_cache=warm_cache)
        second = run_experiment(config, cache=None, activity_cache=warm_cache)
        cold = run_experiment(config, cache=None, activity_cache=None)
        assert warm_cache.stats.hits == config.seeds
        assert second.as_dict() == cold.as_dict() == first.as_dict()

    def test_cross_gpu_sweep_estimates_once_per_seed(
        self, quiet_config, count_estimations
    ):
        gpus = ["v100", "a100", "h100", "rtx6000"]
        base = quiet_config(seeds=2)
        configs = [base.with_overrides(gpu=gpu) for gpu in gpus]
        cache = ActivityCache()
        warm = run_configs(configs, cache=None, activity_cache=cache)
        assert count_estimations["invocations"] == base.seeds  # not len(gpus) * seeds
        assert cache.stats.misses == base.seeds
        assert cache.stats.hits == (len(gpus) - 1) * base.seeds

        count_estimations["invocations"] = 0
        cold = run_configs(configs, cache=None, activity_cache=None)
        assert count_estimations["invocations"] == len(gpus) * base.seeds
        assert [r.as_dict() for r in warm] == [r.as_dict() for r in cold]

    def test_iteration_sweep_reuses_activity(self, quiet_config, count_estimations):
        base = quiet_config()
        configs = [base.with_overrides(iterations=n) for n in (100, 200, 300)]
        run_configs(configs, cache=None, activity_cache=ActivityCache())
        assert count_estimations["invocations"] == base.seeds

    def test_warm_batch_skips_operand_factories(self):
        from repro.activity.engine import estimate_activity_batch
        from repro.dtypes import get_dtype
        from repro.kernels.gemm import GemmOperands, GemmProblem
        from repro.patterns.library import build_pattern
        from repro.util.rng import derive_rng

        spec = get_dtype("fp16_t")
        problem = GemmProblem.square(32, dtype="fp16_t")
        pattern = build_pattern("gaussian", spec)
        invoked = {"count": 0}

        def factory(seed):
            def build():
                invoked["count"] += 1
                a = pattern.generate(problem.a_shape, spec, derive_rng(1, "A", seed))
                b = pattern.generate(
                    problem.b_storage_shape, spec, derive_rng(1, "B", seed)
                )
                return GemmOperands(problem=problem, a=a, b_stored=b)

            return build

        cache = ActivityCache()
        keys = ["s0", "s1"]
        factories = [factory(0), factory(1)]
        cold = estimate_activity_batch(factories, cache=cache, keys=keys)
        assert invoked["count"] == 2
        warm = estimate_activity_batch(factories, cache=cache, keys=keys)
        assert invoked["count"] == 2  # fully warm: no factory ran
        assert warm == cold

    def test_batch_cache_requires_matching_keys(self):
        cache = ActivityCache()
        from repro.activity.engine import estimate_activity_batch

        with pytest.raises(ActivityError):
            estimate_activity_batch([lambda: None], cache=cache)
        with pytest.raises(ActivityError):
            estimate_activity_batch([lambda: None], cache=cache, keys=["a", "b"])

    def test_engine_single_estimate_uses_cache(self, quiet_config, count_estimations):
        from repro.activity.engine import ActivityEngine, estimate_activity
        from repro.experiments.harness import ExperimentRunner

        config = quiet_config()
        runner = ExperimentRunner(config, activity_cache=None)
        operands = runner._generate_operands(runner.plan.problem, 0)
        engine = ActivityEngine(sampling=config.sampling, cache=ActivityCache())
        first = engine.estimate(operands, seed=0, key="k")
        second = engine.estimate(operands, seed=0, key="k")
        assert engine.cache.stats.hits == 1
        reference = estimate_activity(operands, sampling=config.sampling, seed=0)
        assert first == second == reference


class TestAtomicDiskWrites:
    def test_corrupt_entry_is_deleted_not_raised(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated")
        cache = ActivityCache(disk_dir=tmp_path)
        assert cache.get("bad") is None
        assert cache.stats.disk_errors == 1
        assert not path.exists()

    def test_truncated_entry_recovers_after_next_put(self, tmp_path):
        # Exercises the legacy file layout's torn-write recovery; the SQLite
        # backend cannot tear by its journaling contract.
        cache = ActivityCache(disk_dir=tmp_path, disk_backend="json")
        report = _make_report()
        cache.put("k", report)
        (tmp_path / "k.json").write_text(
            (tmp_path / "k.json").read_text()[:20]
        )  # simulate torn write from a non-atomic writer
        reader = ActivityCache(disk_dir=tmp_path, disk_backend="json")
        assert reader.get("k") is None
        cache.put("k", report)  # writer re-publishes
        assert ActivityCache(disk_dir=tmp_path, disk_backend="json").get("k") == report

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ActivityCache(disk_dir=tmp_path, disk_backend="json")
        for index in range(5):
            cache.put(f"k{index}", _make_report())
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(list(tmp_path.glob("*.json"))) == 5

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_concurrent_puts_leave_readable_store(self, tmp_path, backend):
        jobs = [(str(tmp_path), worker, 60, backend) for worker in range(3)]
        with ProcessPoolExecutor(max_workers=3) as pool:
            disk_errors = list(pool.map(_hammer_puts, jobs))
        assert disk_errors == [0, 0, 0]
        reader = ActivityCache(disk_dir=tmp_path, disk_backend=backend)
        keys = sorted(entry.key for entry in scan_cache_dir(tmp_path))
        assert keys == [f"key{index}" for index in range(8)]
        for key in keys:
            assert reader.get(key) is not None
        assert reader.stats.disk_errors == 0


class TestGarbageCollection:
    def _populate(self, root, count=4, tier="experiment", size=100, start_age=0):
        from repro.cache.lifecycle import tier_dir

        directory = tier_dir(root, tier)
        directory.mkdir(parents=True, exist_ok=True)
        now = 1_000_000_000
        for index in range(count):
            path = directory / f"entry{index}.json"
            path.write_text(json.dumps({"pad": "x" * size}))
            age = start_age + (count - index) * 3600  # entry0 oldest
            os.utime(path, (now - age, now - age))
        return now

    def test_scan_and_stats(self, tmp_path):
        now = self._populate(tmp_path, count=3, tier="experiment")
        self._populate(tmp_path, count=2, tier="activity")
        entries = scan_cache_dir(tmp_path)
        assert len(entries) == 5
        assert entries == sorted(entries, key=lambda e: (e.mtime, str(e.path)))
        stats = cache_dir_stats(tmp_path, now=now)
        assert stats["tiers"]["experiment"]["entries"] == 3
        assert stats["tiers"]["activity"]["entries"] == 2
        assert stats["entries"] == 5
        assert stats["bytes"] == sum(e.size_bytes for e in entries)

    def test_prune_by_age(self, tmp_path):
        now = self._populate(tmp_path, count=4)
        report = prune_cache_dir(tmp_path, max_age_s=2.5 * 3600, now=now)
        assert {entry.key for entry in report.removed} == {"entry0", "entry1"}
        assert report.remaining == 2
        survivors = {entry.key for entry in scan_cache_dir(tmp_path)}
        assert survivors == {"entry2", "entry3"}

    def test_prune_by_size_removes_oldest_first(self, tmp_path):
        now = self._populate(tmp_path, count=4, size=100)
        total = sum(entry.size_bytes for entry in scan_cache_dir(tmp_path))
        per_entry = total // 4
        report = prune_cache_dir(tmp_path, max_bytes=2 * per_entry, now=now)
        assert {entry.key for entry in report.removed} == {"entry0", "entry1"}
        assert report.remaining_bytes <= 2 * per_entry
        assert {entry.key for entry in scan_cache_dir(tmp_path)} == {
            "entry2",
            "entry3",
        }

    def test_prune_spans_both_tiers(self, tmp_path):
        self._populate(tmp_path, count=2, tier="experiment", start_age=10_000)
        now = self._populate(tmp_path, count=2, tier="activity")
        report = prune_cache_dir(tmp_path, max_bytes=0, now=now)
        assert len(report.removed) == 4
        assert scan_cache_dir(tmp_path) == []

    def test_dry_run_removes_nothing(self, tmp_path):
        now = self._populate(tmp_path, count=3)
        report = prune_cache_dir(tmp_path, max_bytes=0, dry_run=True, now=now)
        assert len(report.removed) == 3
        assert len(scan_cache_dir(tmp_path)) == 3

    def test_clear_removes_zero_byte_entries(self, tmp_path):
        self._populate(tmp_path, count=2)
        (tmp_path / "empty.json").write_text("")  # fits any size budget
        report = clear_cache_dir(tmp_path)
        assert len(report.removed) == 3
        assert report.remaining == 0
        assert scan_cache_dir(tmp_path) == []

    def test_clear_by_tier(self, tmp_path):
        self._populate(tmp_path, count=2, tier="experiment")
        self._populate(tmp_path, count=3, tier="activity")
        clear_cache_dir(tmp_path, tiers=("activity",))
        remaining = scan_cache_dir(tmp_path)
        assert {entry.tier for entry in remaining} == {"experiment"}
        assert len(remaining) == 2

    def test_stale_tmp_files_swept(self, tmp_path):
        now = self._populate(tmp_path, count=1)
        stale = tmp_path / ".orphan.json.123.tmp"
        stale.write_text("partial")
        os.utime(stale, (now - 7200, now - 7200))
        fresh = tmp_path / ".inflight.json.456.tmp"
        fresh.write_text("partial")
        os.utime(fresh, (now - 10, now - 10))
        report = prune_cache_dir(tmp_path, max_age_s=999_999, now=now)
        assert report.removed_tmp == 1
        assert not stale.exists() and fresh.exists()

    def test_parse_and_format_size(self):
        assert parse_size("1024") == 1024
        assert parse_size("4K") == 4096
        assert parse_size("1.5M") == int(1.5 * (1 << 20))
        assert parse_size("2GiB") == 2 << 30
        assert parse_size("100B") == 100
        with pytest.raises(ValueError):
            parse_size("many")
        assert format_size(512) == "512 B"
        assert format_size(1536) == "1.5 KiB"

    def test_failed_unlink_stays_in_accounting(self, tmp_path, monkeypatch):
        from pathlib import Path

        now = self._populate(tmp_path, count=3, size=100)
        original_unlink = Path.unlink

        def stubborn_unlink(self, *args, **kwargs):
            if self.name == "entry0.json":  # oldest entry refuses to die
                raise PermissionError(13, "denied")
            return original_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", stubborn_unlink)
        report = prune_cache_dir(tmp_path, max_bytes=0, now=now)
        assert {entry.key for entry in report.removed} == {"entry1", "entry2"}
        assert report.remaining == 1
        assert report.remaining_bytes > 0  # the undeletable file still counts
        assert (tmp_path / "entry0.json").exists()

    def test_invalid_limits_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            prune_cache_dir(tmp_path, max_bytes=-1)
        with pytest.raises(ExperimentError):
            prune_cache_dir(tmp_path, max_age_s=-1.0)


class TestCacheCli:
    def _populate_real(self, root, quiet_config):
        config = quiet_config()
        experiment_cache = ExperimentCache(disk_dir=root)
        activity_cache = ActivityCache(disk_dir=root / "activity")
        run_experiment(config, cache=experiment_cache, activity_cache=activity_cache)
        return config

    def test_stats_and_ls(self, tmp_path, quiet_config, capsys):
        self._populate_real(tmp_path, quiet_config)
        assert cache_cli(["stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "experiment" in out and "activity" in out

        assert cache_cli(["ls", "--dir", str(tmp_path), "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert {entry["tier"] for entry in listed} == {"experiment", "activity"}

    def test_env_var_dir(self, tmp_path, quiet_config, capsys, monkeypatch):
        self._populate_real(tmp_path, quiet_config)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cache_cli(["stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] >= 2

    def test_prune_and_clear(self, tmp_path, quiet_config, capsys):
        self._populate_real(tmp_path, quiet_config)
        assert cache_cli(["prune", "--dir", str(tmp_path), "--max-bytes", "0", "--dry-run", "--json"]) == 0
        dry = json.loads(capsys.readouterr().out)
        assert dry["dry_run"] is True and dry["removed"] >= 2
        assert len(scan_cache_dir(tmp_path)) == dry["removed"]

        assert cache_cli(["clear", "--dir", str(tmp_path), "--tier", "activity"]) == 0
        capsys.readouterr()
        assert {entry.tier for entry in scan_cache_dir(tmp_path)} == {"experiment"}

        assert cache_cli(["prune", "--dir", str(tmp_path), "--max-bytes", "0"]) == 0
        capsys.readouterr()
        assert scan_cache_dir(tmp_path) == []

    def test_requires_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            cache_cli(["stats"])

    def test_prune_requires_a_limit(self, tmp_path):
        with pytest.raises(SystemExit):
            cache_cli(["prune", "--dir", str(tmp_path)])

    def test_bad_size_is_an_error_exit(self, tmp_path, capsys):
        assert cache_cli(["prune", "--dir", str(tmp_path), "--max-bytes", "huge"]) == 1
        assert "error" in capsys.readouterr().err


class TestDefaultCacheWiring:
    def test_activity_tier_under_cache_dir(
        self, tmp_path, monkeypatch, reset_default_caches
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        experiment = get_default_cache()
        activity = get_default_activity_cache()
        assert experiment.disk_dir == tmp_path
        assert activity.disk_dir == tmp_path / "activity"

    def test_no_cache_disables_both(self, monkeypatch, reset_default_caches):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert get_default_cache() is None
        assert get_default_activity_cache() is None

    def test_activity_lru_width_env(self, monkeypatch, reset_default_caches):
        monkeypatch.setenv("REPRO_ACTIVITY_CACHE_MAX_ENTRIES", "7")
        assert get_default_activity_cache().max_entries == 7
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "nope")
        reset_default_caches._default_initialized = False
        with pytest.raises(ExperimentError):
            get_default_cache()

    def test_auto_prune_on_first_use(self, tmp_path, monkeypatch, reset_default_caches):
        old = tmp_path / "stale.json"
        old.write_text("{}")
        os.utime(old, (1_000, 1_000))  # 1970: older than any age limit
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_AGE_DAYS", "30")
        get_default_cache()
        assert not old.exists()


class TestSweepRobustness:
    def _failing_config(self, quiet_config):
        # Valid at construction time, fails inside the harness (and thus
        # inside pool workers) when the pattern is built.
        return quiet_config(
            pattern_params={"bogus_param": 1.0}, label="the bad point"
        )

    def test_inline_failure_attaches_label(self, quiet_config):
        configs = [quiet_config(), self._failing_config(quiet_config)]
        with pytest.raises(ExperimentError, match="the bad point"):
            run_configs(configs, cache=None, activity_cache=None)

    def test_pool_failure_attaches_label_and_cancels(self, quiet_config):
        configs = [
            quiet_config(),
            self._failing_config(quiet_config),
            quiet_config(matrix_size=256),
        ]
        with pytest.raises(ExperimentError, match="the bad point"):
            run_configs(configs, workers=2, cache=None, activity_cache=None)

    def test_chunked_pool_failure_names_the_chunk(self, quiet_config):
        # With chunksize > 1 a failing chunk loses its earlier results too,
        # so the error must name every candidate point, not blame the first.
        configs = [
            quiet_config(label="good point"),
            self._failing_config(quiet_config),
            quiet_config(matrix_size=256),
            quiet_config(base_seed=7),
        ]
        with pytest.raises(ExperimentError, match="the bad point"):
            run_configs(
                configs, workers=2, chunksize=2, cache=None, activity_cache=None
            )

    def test_pool_usable_after_failure(self, quiet_config):
        with pytest.raises(ExperimentError):
            run_configs(
                [self._failing_config(quiet_config), quiet_config()],
                workers=2,
                cache=None,
                activity_cache=None,
            )
        results = run_configs(
            [quiet_config(), quiet_config(matrix_size=256)],
            workers=2,
            cache=None,
            activity_cache=None,
        )
        assert len(results) == 2

    def test_pool_honours_explicit_activity_cache_disable(
        self, quiet_config, tmp_path, monkeypatch, reset_default_caches
    ):
        # Workers resolve their default caches lazily from the environment;
        # an explicit activity_cache=None must override that and fully
        # disable the tier (no entries written), while the default sentinel
        # lets workers populate the shared disk tier.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        configs = [quiet_config(), quiet_config(matrix_size=256)]
        run_configs(configs, workers=2, cache=None, activity_cache=None)
        assert not [e for e in scan_cache_dir(tmp_path) if e.tier == "activity"]

        run_configs(configs, workers=2, cache=None)
        assert [e for e in scan_cache_dir(tmp_path) if e.tier == "activity"]

    def test_oversized_chunksize_is_capped(self, quiet_config):
        configs = [
            quiet_config(),
            quiet_config(matrix_size=256),
            quiet_config(base_seed=7),
        ]
        results = run_configs(
            configs, workers=2, chunksize=99, cache=None, activity_cache=None
        )
        assert len(results) == 3

    def test_zero_and_negative_chunksize_rejected(self, quiet_config):
        for bad in (0, -3):
            with pytest.raises(ExperimentError, match="chunksize"):
                run_configs([quiet_config()], chunksize=bad, cache=None)


class TestCostWeightedPrune:
    """Size pruning weights eviction order by recomputation cost: activity
    entries (cheap to rebuild) go before experiment entries (~100x dearer),
    unless age differences overwhelm the weight ratio."""

    def _two_tier_dir(self, tmp_path, experiment_age_s, activity_age_s, size=100):
        from repro.cache.lifecycle import tier_dir

        now = 1_000_000_000
        for tier, age in (("experiment", experiment_age_s), ("activity", activity_age_s)):
            directory = tier_dir(tmp_path, tier)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{tier}0.json"
            path.write_text(json.dumps({"pad": "x" * size}))
            os.utime(path, (now - age, now - age))
        return now

    def test_older_experiment_outlives_newer_activity(self, tmp_path):
        # Experiment entry is 24x older; the 100x default weight still
        # makes the one-hour-old activity entry the first eviction.
        now = self._two_tier_dir(tmp_path, experiment_age_s=86_400, activity_age_s=3_600)
        entries = scan_cache_dir(tmp_path)
        keep_one = max(entry.size_bytes for entry in entries)
        report = prune_cache_dir(tmp_path, max_bytes=keep_one, now=now)
        assert [entry.tier for entry in report.removed] == ["activity"]
        assert {entry.tier for entry in scan_cache_dir(tmp_path)} == {"experiment"}

    def test_weight_ratio_can_be_overcome_by_age(self, tmp_path):
        # 200x the age difference beats the 100x weight: the ancient
        # experiment entry goes first.
        now = self._two_tier_dir(
            tmp_path, experiment_age_s=720_000, activity_age_s=3_600
        )
        entries = scan_cache_dir(tmp_path)
        keep_one = max(entry.size_bytes for entry in entries)
        report = prune_cache_dir(tmp_path, max_bytes=keep_one, now=now)
        assert [entry.tier for entry in report.removed] == ["experiment"]

    def test_explicit_cost_weights_override(self, tmp_path):
        now = self._two_tier_dir(tmp_path, experiment_age_s=7_200, activity_age_s=3_600)
        entries = scan_cache_dir(tmp_path)
        keep_one = max(entry.size_bytes for entry in entries)
        report = prune_cache_dir(
            tmp_path,
            max_bytes=keep_one,
            now=now,
            cost_weights={"experiment": 1.0, "activity": 1.0},
        )
        # Unweighted, plain mtime-LRU: the older experiment entry goes.
        assert [entry.tier for entry in report.removed] == ["experiment"]

    def test_env_override(self, tmp_path, monkeypatch):
        from repro.cache.lifecycle import resolve_cost_weights

        monkeypatch.setenv("REPRO_CACHE_EXPERIMENT_COST", "250")
        assert resolve_cost_weights()["experiment"] == 250.0
        monkeypatch.setenv("REPRO_CACHE_EXPERIMENT_COST", "lots")
        with pytest.raises(ExperimentError):
            resolve_cost_weights()

    def test_invalid_weights_rejected(self):
        from repro.cache.lifecycle import resolve_cost_weights

        with pytest.raises(ExperimentError):
            resolve_cost_weights({"experiment": 0.0})
        with pytest.raises(ExperimentError):
            resolve_cost_weights({"unknown-tier": 2.0})

    def test_age_prune_ignores_cost(self, tmp_path):
        # Staleness is absolute: max_age_s removes the old experiment entry
        # even though its tier is 100x more expensive to rebuild.
        now = self._two_tier_dir(tmp_path, experiment_age_s=86_400, activity_age_s=60)
        report = prune_cache_dir(tmp_path, max_age_s=3_600, now=now)
        assert [entry.tier for entry in report.removed] == ["experiment"]

    def test_cli_experiment_cost_flag(self, tmp_path, capsys):
        now_unused = self._two_tier_dir(
            tmp_path, experiment_age_s=7_200, activity_age_s=3_600
        )
        del now_unused
        entries = scan_cache_dir(tmp_path)
        keep_one = max(entry.size_bytes for entry in entries)
        assert (
            cache_cli(
                [
                    "prune",
                    "--dir",
                    str(tmp_path),
                    "--max-bytes",
                    str(keep_one),
                    "--experiment-cost",
                    "1",
                    "--json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["removed"] == 1
        # With the weight flattened to 1, mtime order wins: experiment went.
        assert {entry.tier for entry in scan_cache_dir(tmp_path)} == {"activity"}


class TestLiveCliStats:
    def test_stats_include_live_memory_counters(
        self, tmp_path, quiet_config, capsys, monkeypatch, reset_default_caches
    ):
        store = reset_default_caches
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        config = quiet_config()
        run_experiment(config)  # miss + put through the process defaults
        run_experiment(config)  # hit
        assert cache_cli(["stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert "memory" in stats
        experiment = stats["memory"]["experiment"]
        assert experiment["entries"] == 1
        assert experiment["hits"] == 1
        assert experiment["puts"] == 1
        assert 0.0 < experiment["hit_rate"] <= 1.0
        assert stats["memory"]["activity"]["puts"] >= 1
        # The live section reflects the same instances the process holds.
        assert store.peek_default_caches()["experiment"].stats.hits == 1

        assert cache_cli(["stats"]) == 0
        out = capsys.readouterr().out
        assert "[live] experiment" in out and "hit rate" in out

    def test_stats_omit_memory_without_live_caches(
        self, tmp_path, quiet_config, capsys, reset_default_caches
    ):
        # Fresh default-cache state, nothing instantiated: a plain stats
        # call reports disk only, exactly like a subprocess invocation.
        config = quiet_config()
        experiment_cache = ExperimentCache(disk_dir=tmp_path)
        activity_cache = ActivityCache(disk_dir=tmp_path / "activity")
        run_experiment(config, cache=experiment_cache, activity_cache=activity_cache)
        assert cache_cli(["stats", "--dir", str(tmp_path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert "memory" not in stats

    def test_describe_memory_shape(self):
        cache = ActivityCache(max_entries=4)
        cache.put("k", _make_report())
        cache.get("k")
        cache.get("missing")
        info = cache.describe_memory()
        assert info["entries"] == 1
        assert info["max_entries"] == 4
        assert info["hits"] == 1 and info["misses"] == 1 and info["puts"] == 1
        assert info["disk_dir"] is None
