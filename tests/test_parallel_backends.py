"""Tests for the pluggable sweep execution backends (:mod:`repro.parallel`).

Covers the three pillars of the subsystem:

* **Equivalence** — `serial`, `threads` and `processes` return bit-for-bit
  identical results (and identical :class:`RunStats`) at any worker count,
  with and without the result/activity cache tiers.
* **Failure semantics** — a failing sweep point propagates with its label
  attached, blames only its own submission chunk, cancels queued work, and
  leaves the runner reusable (no leaked pools or shared-memory segments).
* **Calibration** — the chunk-budget probe honours the environment
  override, persists to the cache directory, and reloads what it persisted.

Plus the premise the ``threads`` backend rests on: the bit-level kernels
release the GIL (asserted in a way that works even on a single-core host).
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cache.store import ActivityCache, ExperimentCache
from repro.errors import ExperimentError
from repro.experiments.figures.common import FigureSettings
from repro.experiments.sweep import RunStats, _chunk_group, run_configs, sweep_configs
from repro.parallel import (
    BACKENDS,
    calibrate_chunk_budget,
    chunk_budget_bytes,
    choose_backend,
    get_executor,
    resolve_backend,
)
from repro.parallel import shm
from repro.parallel.backends import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.parallel.calibrate import (
    MAX_CHUNK_BUDGET_BYTES,
    MIN_CHUNK_BUDGET_BYTES,
    calibration_path,
)
from repro.util.bits import toggle_fraction_along_axis
from repro.util.rng import derive_rng


# Top-level helpers for the process-executor tests (must be picklable).
_INIT_SENTINEL = {"value": None}


def _identity(x):
    return x


def _encode_json(values):
    return json.dumps(list(values)).encode()


def _decode_json(payload):
    return json.loads(payload)


def _set_init_sentinel(value):
    _INIT_SENTINEL["value"] = value


def _read_init_sentinel(_item):
    return _INIT_SENTINEL["value"]


@pytest.fixture
def sweep(quiet_config):
    """A small four-point sweep with two seeds per point."""
    return sweep_configs(
        quiet_config(pattern_family="sparsity", matrix_size=32, seeds=2),
        "sparsity",
        [0.0, 0.25, 0.5, 0.75],
    )


@pytest.fixture
def failing_sweep(quiet_config):
    """Six points where the fifth fails at *run* time (pattern params are
    validated inside the worker, not at config construction)."""
    configs = sweep_configs(
        quiet_config(pattern_family="sparsity", matrix_size=32),
        "sparsity",
        [0.0, 0.2, 0.4, 0.6, 3.0, 0.8],
    )
    return configs


def _as_dicts(results):
    return [result.as_dict() for result in results]


# ---------------------------------------------------------------- equivalence


class TestBackendEquivalence:
    @pytest.fixture
    def reference(self, sweep):
        return _as_dicts(run_configs(sweep, workers=1, cache=None, activity_cache=None))

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [2, 3])
    def test_results_bit_for_bit_identical(self, sweep, reference, backend, workers):
        stats = RunStats()
        results = run_configs(
            sweep,
            workers=workers,
            backend=backend,
            cache=None,
            activity_cache=None,
            stats=stats,
        )
        assert _as_dicts(results) == reference
        assert stats.executed == 4
        assert stats.backend == backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stats_match_serial(self, sweep, backend):
        serial_stats, backend_stats = RunStats(), RunStats()
        run_configs(sweep, workers=1, cache=None, activity_cache=None, stats=serial_stats)
        run_configs(
            sweep,
            workers=2,
            backend=backend,
            cache=None,
            activity_cache=None,
            stats=backend_stats,
        )
        for field in ("total", "unique", "cache_hits", "executed"):
            assert getattr(backend_stats, field) == getattr(serial_stats, field)
        assert "backend" in backend_stats.as_dict()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_result_cache_interaction(self, sweep, reference, backend):
        """Every backend fills an explicit result cache (puts happen in the
        parent) and a warm second pass is served entirely from it."""
        cache = ExperimentCache(max_entries=16)
        first = run_configs(
            sweep, workers=2, backend=backend, cache=cache, activity_cache=None
        )
        stats = RunStats()
        second = run_configs(
            sweep,
            workers=2,
            backend=backend,
            cache=cache,
            activity_cache=None,
            stats=stats,
        )
        assert _as_dicts(first) == reference
        assert _as_dicts(second) == reference
        assert stats.cache_hits == 4
        assert stats.executed == 0

    def test_threads_honour_activity_cache_instance(self, sweep, reference):
        """The in-process backends consult an explicit activity-cache
        *instance* directly — warm per-seed entries flow both ways."""
        activity = ActivityCache(max_entries=64)
        run_configs(sweep, workers=2, backend="threads", cache=None, activity_cache=activity)
        assert activity.stats.puts > 0
        warm = run_configs(
            sweep, workers=2, backend="threads", cache=None, activity_cache=activity
        )
        assert activity.stats.hits > 0
        assert _as_dicts(warm) == reference

    def test_processes_shm_and_pickle_transfer_agree(self, sweep, reference, monkeypatch):
        """The shared-memory return path and the pickle fallback both
        reproduce the serial results exactly."""
        via_shm = run_configs(
            sweep, workers=2, backend="processes", cache=None, activity_cache=None
        )
        monkeypatch.setenv(shm.ENV_DISABLE_SHM, "0")
        via_pickle = run_configs(
            sweep, workers=2, backend="processes", cache=None, activity_cache=None
        )
        assert _as_dicts(via_shm) == reference
        assert _as_dicts(via_pickle) == reference

    def test_dedupe_off_matches(self, quiet_config):
        config = quiet_config(pattern_family="sparsity", matrix_size=32)
        configs = sweep_configs(config, "sparsity", [0.5, 0.5, 0.5])
        reference = _as_dicts(
            run_configs(configs, workers=1, cache=None, activity_cache=None, dedupe=False)
        )
        for backend in ("threads", "processes"):
            results = run_configs(
                configs,
                workers=2,
                backend=backend,
                cache=None,
                activity_cache=None,
                dedupe=False,
            )
            assert _as_dicts(results) == reference


# ----------------------------------------------------------- failure handling


class TestFailurePropagation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_failure_carries_label(self, failing_sweep, backend):
        with pytest.raises(ExperimentError, match="sparsity=3.0"):
            run_configs(
                failing_sweep,
                workers=2,
                backend=backend,
                cache=None,
                activity_cache=None,
            )

    def test_runner_reusable_after_failure(self, failing_sweep, sweep):
        for backend in BACKENDS:
            with pytest.raises(ExperimentError):
                run_configs(
                    failing_sweep, workers=2, backend=backend, cache=None, activity_cache=None
                )
        results = run_configs(sweep, workers=2, cache=None, activity_cache=None)
        assert len(results) == 4

    def test_process_chunk_blame_does_not_cross_chunks(self, failing_sweep):
        """With chunksize 2 the failing point (index 4) shares a chunk with
        index 5 only; indices 0-3 must not be blamed."""
        with pytest.raises(ExperimentError) as excinfo:
            run_configs(
                failing_sweep,
                workers=2,
                backend="processes",
                chunksize=2,
                cache=None,
                activity_cache=None,
            )
        message = str(excinfo.value)
        assert "sparsity=3.0" in message
        for innocent in ("sparsity=0.0", "sparsity=0.2", "sparsity=0.4", "sparsity=0.6"):
            assert innocent not in message

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"),
        reason="POSIX shared memory is only directly observable under /dev/shm",
    )
    def test_no_leaked_shm_segments_after_failure(self, failing_sweep):
        import glob

        before = set(glob.glob("/dev/shm/psm_*"))
        with pytest.raises(ExperimentError):
            run_configs(
                failing_sweep,
                workers=2,
                backend="processes",
                chunksize=1,
                cache=None,
                activity_cache=None,
            )
        after = set(glob.glob("/dev/shm/psm_*"))
        assert after - before == set()


class TestChunkGroupHelper:
    PENDING = [(str(i), [i]) for i in range(10)]

    def test_aligned_position_names_own_chunk(self):
        assert _chunk_group(self.PENDING, 4, 4) == self.PENDING[4:8]

    def test_mid_chunk_position_does_not_bleed_into_next_chunk(self):
        # Old behaviour was pending[5:9], crossing the chunk boundary at 8.
        assert _chunk_group(self.PENDING, 5, 4) == self.PENDING[4:8]

    def test_last_partial_chunk_is_clamped(self):
        assert _chunk_group(self.PENDING, 8, 4) == self.PENDING[8:10]
        assert _chunk_group(self.PENDING, 9, 4) == self.PENDING[8:10]

    def test_span_one(self):
        assert _chunk_group(self.PENDING, 7, 1) == [self.PENDING[7]]


# ------------------------------------------------------------------ executors


class TestExecutors:
    def test_serial_is_lazy_and_ordered(self):
        calls = []

        def record(x):
            calls.append(x)
            return x * 10

        iterator = SerialExecutor().map(record, [1, 2, 3])
        assert calls == []  # nothing runs until consumed
        assert next(iterator) == 10
        assert calls == [1]
        assert list(iterator) == [20, 30]

    def test_thread_executor_orders_results(self):
        def slow_first(x):
            if x == 0:
                time.sleep(0.05)
            return x

        with ThreadExecutor(4) as executor:
            assert list(executor.map(slow_first, list(range(6)))) == list(range(6))

    def test_thread_executor_propagates_and_cancels(self):
        started = []

        def boom(x):
            started.append(x)
            if x == 0:
                raise ValueError("boom")
            time.sleep(0.01)
            return x

        executor = ThreadExecutor(1)
        with pytest.raises(ValueError, match="boom"):
            for _ in executor.map(boom, list(range(50))):
                pass
        executor.shutdown(cancel=True)
        # With one worker and cancel_futures, most queued items never start.
        assert len(started) < 50

    def test_get_executor_validates(self):
        with pytest.raises(ExperimentError):
            get_executor("bogus", 2)
        with pytest.raises(ExperimentError):
            ThreadExecutor(0)
        with pytest.raises(ExperimentError):
            ProcessExecutor(2, chunksize=0)
        with pytest.raises(ExperimentError):
            ProcessExecutor(2, transfer="carrier-pigeon")

    def test_chunk_span_reflects_chunksize(self):
        executor = ProcessExecutor(2, chunksize=3)
        assert executor.chunk_span == 3
        executor.shutdown()
        assert SerialExecutor().chunk_span == 1

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"),
        reason="POSIX shared memory is only directly observable under /dev/shm",
    )
    def test_abandoned_iterator_does_not_leak_segments(self):
        """Breaking out of the result stream early (clean shutdown, no
        cancellation) must still free the unconsumed chunks' segments."""
        import glob

        before = set(glob.glob("/dev/shm/psm_*"))
        with ProcessExecutor(2, chunksize=1, encode=_encode_json, decode=_decode_json) as executor:
            for value in executor.map(_identity, list(range(6))):
                if value == 0:
                    break  # abandon the rest of the stream
        after = set(glob.glob("/dev/shm/psm_*"))
        assert after - before == set()

    def test_worker_initializer_runs(self):
        executor = ProcessExecutor(
            1,
            chunksize=1,
            encode=_encode_json,
            decode=_decode_json,
            initializer=_set_init_sentinel,
            initargs=(42,),
        )
        with executor:
            assert list(executor.map(_read_init_sentinel, [0])) == [42]


class TestBackendResolution:
    def test_explicit_names_pass_through(self):
        for name in BACKENDS:
            assert resolve_backend(name, workers=1) == name

    def test_auto_collapses_to_serial_for_one_worker(self):
        assert resolve_backend("auto", workers=1) == "serial"

    def test_auto_prefers_threads_for_estimation(self):
        assert resolve_backend("auto", workers=4) == "threads"
        assert resolve_backend("auto", workers=4, workload="generation") == "processes"

    def test_choose_backend(self):
        assert choose_backend("estimation") == "threads"
        assert choose_backend("generation") == "processes"
        with pytest.raises(ExperimentError):
            choose_backend("interpretive-dance")

    def test_env_override_steers_auto_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "processes")
        assert resolve_backend("auto", workers=4) == "processes"
        assert resolve_backend("threads", workers=4) == "threads"
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "bogus")
        with pytest.raises(ExperimentError):
            resolve_backend("auto", workers=4)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_backend("bogus", workers=2)

    def test_run_configs_rejects_unknown_backend(self, quiet_config):
        with pytest.raises(ExperimentError):
            run_configs([quiet_config()], workers=2, backend="bogus")

    def test_figure_settings_validate_backend(self):
        assert FigureSettings.quick(backend="threads").backend == "threads"
        with pytest.raises(ExperimentError):
            FigureSettings.quick(backend="bogus")


# --------------------------------------------------------------- shm transfer


class TestSharedMemoryTransfer:
    @staticmethod
    def _encode(values):
        return json.dumps(list(values)).encode()

    @staticmethod
    def _decode(payload):
        return json.loads(payload)

    def test_roundtrip(self):
        handle = shm.share_chunk([1, 2, 3], self._encode)
        assert isinstance(handle, shm.ShmHandle)
        assert handle.count == 3
        assert shm.receive_chunk(handle, self._decode) == [1, 2, 3]

    def test_receive_unlinks_segment(self):
        handle = shm.share_chunk(["x"], self._encode)
        shm.receive_chunk(handle, self._decode)
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)

    def test_discard_unlinks_segment(self):
        handle = shm.share_chunk(["x"], self._encode)
        shm.discard_chunk(handle)
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)

    def test_disable_env_forces_inline(self, monkeypatch):
        monkeypatch.setenv(shm.ENV_DISABLE_SHM, "0")
        handle = shm.share_chunk([1, 2], self._encode)
        assert isinstance(handle, shm.InlineChunk)
        assert shm.receive_chunk(handle, self._decode) == [1, 2]
        assert not shm.shm_available()

    def test_count_mismatch_detected(self):
        handle = shm.share_chunk([1, 2, 3], self._encode)
        bad = shm.ShmHandle(name=handle.name, size=handle.size, count=7)
        with pytest.raises(ExperimentError, match="expected 7"):
            shm.receive_chunk(bad, self._decode)

    def test_experiment_result_codec_is_lossless(self, quiet_config):
        from repro.experiments.harness import run_experiment

        result = run_experiment(quiet_config(matrix_size=32), cache=None, activity_cache=None)
        payload = shm.encode_experiment_results([result])
        (decoded,) = shm.decode_experiment_results(payload)
        assert decoded.as_dict() == result.as_dict()


# ---------------------------------------------------------------- calibration


class TestChunkBudgetCalibration:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK_BUDGET", "4096")
        assert chunk_budget_bytes(refresh=True) == 4096
        monkeypatch.setenv("REPRO_BATCH_CHUNK_BUDGET", "2M")
        assert chunk_budget_bytes() == 2 << 20  # re-resolves on env change

    def test_env_override_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK_BUDGET", "a-few-cachelines")
        with pytest.raises(ExperimentError):
            chunk_budget_bytes(refresh=True)

    def test_override_reaches_recommended_chunk(self, monkeypatch):
        from repro.activity.engine import recommended_chunk

        monkeypatch.setenv("REPRO_BATCH_CHUNK_BUDGET", str(8 * 1000))
        chunk_budget_bytes(refresh=True)
        assert recommended_chunk(100) == 10  # 8000 bytes / (100 values * 8 B)

    def test_probe_persists_to_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_CHUNK_BUDGET", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        budget = chunk_budget_bytes(refresh=True)
        path = calibration_path(tmp_path)
        assert path.is_file()
        persisted = json.loads(path.read_text())
        assert persisted["budget_bytes"] == budget
        assert MIN_CHUNK_BUDGET_BYTES <= budget <= MAX_CHUNK_BUDGET_BYTES

    def test_persisted_value_is_loaded(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_CHUNK_BUDGET", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        sentinel = 3 << 20
        path = calibration_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"budget_bytes": sentinel}))
        assert chunk_budget_bytes(refresh=True) == sentinel

    def test_corrupt_persisted_file_falls_back_to_probe(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_CHUNK_BUDGET", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        path = calibration_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json {")
        budget = chunk_budget_bytes(refresh=True)
        assert MIN_CHUNK_BUDGET_BYTES <= budget <= MAX_CHUNK_BUDGET_BYTES

    def test_probe_reports_throughputs_and_bounds(self):
        result = calibrate_chunk_budget(sizes=(1 << 16, 1 << 17), repeats=1)
        assert set(result.throughput_bytes_per_s) == {1 << 16, 1 << 17}
        assert all(rate > 0 for rate in result.throughput_bytes_per_s.values())
        assert MIN_CHUNK_BUDGET_BYTES <= result.budget_bytes <= MAX_CHUNK_BUDGET_BYTES

    def test_probe_rejects_bad_repeats(self):
        with pytest.raises(ExperimentError):
            calibrate_chunk_budget(repeats=0)

    def test_seed_probed_budget(self, monkeypatch):
        import repro.parallel.calibrate as calibrate

        saved = (calibrate._probed_budget, calibrate._resolved)
        try:
            monkeypatch.delenv("REPRO_BATCH_CHUNK_BUDGET", raising=False)
            monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
            calibrate.seed_probed_budget(123_456)
            assert chunk_budget_bytes() == 123_456  # seed replaces the probe
            monkeypatch.setenv("REPRO_BATCH_CHUNK_BUDGET", "4096")
            assert chunk_budget_bytes() == 4096  # explicit override still wins
            with pytest.raises(ExperimentError):
                calibrate.seed_probed_budget(0)
        finally:
            calibrate._probed_budget, calibrate._resolved = saved


# ------------------------------------------------------------- GIL & threads


def test_toggle_kernel_releases_gil():
    """A pure-Python counter thread must make progress *during* one long
    toggle-kernel call.  If the kernel held the GIL, the counter could not
    run until the call returned (a single ufunc call never hits a bytecode
    boundary); this holds on any core count, unlike wall-clock speedups.
    """
    rng = derive_rng(5, "gil-test", 0)
    words = rng.integers(0, 1 << 16, size=(2048, 2048), dtype=np.uint64).astype(np.uint16)
    toggle_fraction_along_axis(words, 1)  # warm up caches and ufunc dispatch

    counter = [0]
    stop = threading.Event()

    def count() -> None:
        while not stop.is_set():
            counter[0] += 1

    thread = threading.Thread(target=count, daemon=True)
    thread.start()
    try:
        time.sleep(0.02)  # let the counter thread get scheduled
        before = counter[0]
        toggle_fraction_along_axis(words, 1)
        progressed = counter[0] - before
    finally:
        stop.set()
        thread.join(timeout=5.0)
    assert progressed > 1000, (
        f"counter advanced only {progressed} increments during the kernel — "
        "the toggle kernel appears to hold the GIL"
    )


def test_cache_is_thread_safe(quiet_config):
    """Hammer one ActivityCache from many threads (the threads backend's
    sharing pattern); the LRU must neither corrupt nor drop bookkeeping."""
    from repro.activity.report import ActivityReport

    cache = ActivityCache(max_entries=32)
    template = dict(
        operand_activity=0.5,
        multiplier_activity=0.5,
        datapath_activity=0.5,
        memory_activity=0.5,
        operand_toggle_a=0.5,
        operand_toggle_b=0.5,
        multiplier_hw_product=0.5,
        zero_mac_fraction=0.0,
        product_toggle=0.5,
        accumulator_toggle=0.5,
        memory_toggle=0.5,
        a_hamming_fraction=0.5,
        b_hamming_fraction=0.5,
        bit_alignment=0.5,
    )

    def worker(worker_id: int) -> None:
        for i in range(200):
            key = f"k{(worker_id * 7 + i) % 48}"
            if cache.get(key) is None:
                cache.put(key, ActivityReport(**template))

    with ThreadPoolExecutor(8) as pool:
        list(pool.map(worker, range(8)))
    assert len(cache) <= 32
    stats = cache.stats
    assert stats.lookups == 8 * 200
    assert stats.hits + stats.misses == stats.lookups


class TestChaosEquivalence:
    """Chaos parametrization: the processes backend keeps its bit-for-bit
    equivalence contract while fault injection kills its workers (see
    tests/test_faults.py for the full resilience matrix)."""

    @pytest.mark.parametrize(
        "schedule_text",
        [
            "pool.worker:kill@2",  # one breakage: rebuild + resubmit
            "pool.worker:kill@1",  # every worker dies: threads fallback
        ],
    )
    def test_killed_workers_never_change_results(
        self, sweep, monkeypatch, schedule_text
    ):
        import repro.faults as faults

        reference = _as_dicts(
            run_configs(sweep, workers=1, cache=None, activity_cache=None)
        )
        monkeypatch.setenv("REPRO_FAULTS", schedule_text)
        faults.reset()
        try:
            stats = RunStats()
            survived = _as_dicts(
                run_configs(
                    sweep,
                    workers=2,
                    backend="processes",
                    cache=None,
                    activity_cache=None,
                    stats=stats,
                )
            )
        finally:
            faults.reset()
            monkeypatch.delenv("REPRO_FAULTS")
        assert survived == reference
        assert stats.pool_rebuilds == 1
        assert stats.chunks_resubmitted > 0
