"""Unit tests for the repro.telemetry package (traces, sampler, NVML, DCGM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.gpu.device import Device
from repro.telemetry.dcgm import (
    DCGM_FI_DEV_GPU_UTIL,
    DCGM_FI_DEV_POWER_USAGE,
    DcgmMonitor,
    DcgmRecord,
)
from repro.telemetry.nvml import SimulatedNVML
from repro.telemetry.sampler import TelemetryConfig, simulate_power_trace
from repro.telemetry.trace import PowerTrace


class TestPowerTrace:
    def _trace(self, watts, period=0.1):
        times = np.arange(len(watts)) * period
        return PowerTrace(timestamps_s=times, power_watts=np.array(watts, dtype=float), sample_period_s=period)

    def test_basic_stats(self):
        trace = self._trace([100.0, 200.0, 300.0])
        assert trace.num_samples == 3
        assert trace.mean_power_watts() == pytest.approx(200.0)
        assert trace.duration_s == pytest.approx(0.3)
        assert trace.energy_joules() == pytest.approx(60.0)

    def test_summary(self):
        summary = self._trace([100.0, 200.0]).summary()
        assert summary.count == 2
        assert summary.minimum == 100.0

    def test_trim_warmup_drops_early_samples(self):
        trace = self._trace([10.0] * 5 + [100.0] * 10)
        trimmed = trace.trim_warmup(0.5)
        assert trimmed.num_samples == 10
        assert trimmed.mean_power_watts() == pytest.approx(100.0)

    def test_trim_never_empties(self):
        trace = self._trace([10.0, 20.0])
        trimmed = trace.trim_warmup(100.0)
        assert trimmed.num_samples == 1

    def test_trim_negative_rejected(self):
        with pytest.raises(TelemetryError):
            self._trace([1.0]).trim_warmup(-1.0)

    def test_mean_of_empty_trace_rejected(self):
        trace = PowerTrace(np.array([]), np.array([]), 0.1)
        with pytest.raises(TelemetryError):
            trace.mean_power_watts()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TelemetryError):
            PowerTrace(np.array([0.0, 0.1]), np.array([1.0]), 0.1)

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(TelemetryError):
            PowerTrace(np.array([0.1, 0.0]), np.array([1.0, 2.0]), 0.1)

    def test_invalid_period_rejected(self):
        with pytest.raises(TelemetryError):
            PowerTrace(np.array([0.0]), np.array([1.0]), 0.0)

    def test_resample(self):
        trace = self._trace([1.0, 2.0, 3.0, 4.0], period=0.1)
        resampled = trace.resampled(0.2)
        assert resampled.sample_period_s == 0.2
        assert resampled.num_samples == 2

    def test_as_dict(self):
        d = self._trace([5.0]).as_dict()
        assert d["power_watts"] == [5.0]


class TestSimulatedTrace:
    def test_length_matches_duration(self):
        trace = simulate_power_trace(250.0, duration_s=5.0, idle_power_watts=50.0)
        assert trace.num_samples == 50

    def test_warmup_ramp_starts_low(self, quiet_telemetry):
        trace = simulate_power_trace(
            250.0, duration_s=5.0, idle_power_watts=50.0, config=quiet_telemetry
        )
        assert trace.power_watts[0] < 150.0
        assert trace.power_watts[-1] == pytest.approx(250.0, abs=1.0)

    def test_trimmed_mean_close_to_steady(self, quiet_telemetry):
        trace = simulate_power_trace(
            250.0, duration_s=10.0, idle_power_watts=50.0, config=quiet_telemetry
        )
        assert trace.trim_warmup(0.5).mean_power_watts() == pytest.approx(250.0, abs=2.0)

    def test_noise_changes_samples_but_not_mean_much(self):
        noisy = TelemetryConfig(noise_std_watts=2.0, drift_watts=0.0)
        trace = simulate_power_trace(200.0, 20.0, 50.0, config=noisy, seed=1)
        assert trace.power_watts.std() > 0.5
        assert trace.trim_warmup(0.5).mean_power_watts() == pytest.approx(200.0, abs=2.0)

    def test_deterministic_per_seed(self):
        a = simulate_power_trace(200.0, 3.0, 50.0, seed=7)
        b = simulate_power_trace(200.0, 3.0, 50.0, seed=7)
        np.testing.assert_array_equal(a.power_watts, b.power_watts)

    def test_power_never_negative(self):
        config = TelemetryConfig(noise_std_watts=100.0)
        trace = simulate_power_trace(5.0, 3.0, 1.0, config=config)
        assert trace.power_watts.min() >= 0.0

    def test_invalid_duration(self):
        with pytest.raises(TelemetryError):
            simulate_power_trace(100.0, 0.0, 50.0)

    def test_invalid_config(self):
        with pytest.raises(TelemetryError):
            TelemetryConfig(sample_period_s=0.0)
        with pytest.raises(TelemetryError):
            TelemetryConfig(noise_std_watts=-1.0)


class TestSimulatedNVML:
    def test_lifecycle_and_queries(self):
        nvml = SimulatedNVML([Device.create("a100"), Device.create("h100")])
        with nvml:
            assert nvml.device_get_count() == 2
            handle = nvml.device_get_handle_by_index(0)
            assert "A100" in nvml.device_get_name(handle)
            assert nvml.device_get_enforced_power_limit(handle) == 300_000

    def test_idle_power_read(self):
        nvml = SimulatedNVML([Device.create("a100")])
        with nvml:
            handle = nvml.device_get_handle_by_index(0)
            milliwatts = nvml.device_get_power_usage(handle)
            assert 30_000 < milliwatts < 90_000

    def test_load_attach_detach(self):
        nvml = SimulatedNVML([Device.create("a100")])
        with nvml:
            handle = nvml.device_get_handle_by_index(0)
            nvml.attach_load(handle, power_watts=275.0, utilization_percent=98.5)
            assert nvml.device_get_power_usage(handle) > 200_000
            assert nvml.device_get_utilization_rates(handle)["gpu"] == pytest.approx(98.5)
            nvml.detach_load(handle)
            assert nvml.device_get_utilization_rates(handle)["gpu"] == 0.0

    def test_uninitialized_access_rejected(self):
        nvml = SimulatedNVML([Device.create("a100")])
        with pytest.raises(TelemetryError):
            nvml.device_get_handle_by_index(0)

    def test_out_of_range_index(self):
        nvml = SimulatedNVML([Device.create("a100")])
        nvml.init()
        with pytest.raises(TelemetryError):
            nvml.device_get_handle_by_index(5)

    def test_needs_devices(self):
        with pytest.raises(TelemetryError):
            SimulatedNVML([])

    def test_negative_load_rejected(self):
        nvml = SimulatedNVML([Device.create("a100")])
        nvml.init()
        handle = nvml.device_get_handle_by_index(0)
        with pytest.raises(TelemetryError):
            nvml.attach_load(handle, power_watts=-1.0)


class TestDcgmMonitor:
    def test_watch_run_produces_records(self, quiet_telemetry):
        monitor = DcgmMonitor(Device.create("a100"), config=quiet_telemetry)
        records = monitor.watch_run(steady_power_watts=260.0, duration_s=2.0)
        assert len(records) == 20
        assert records[-1].value(DCGM_FI_DEV_POWER_USAGE) == pytest.approx(260.0, abs=2.0)
        assert records[0].value(DCGM_FI_DEV_GPU_UTIL) == pytest.approx(98.5)

    def test_records_to_trace_round_trip(self, quiet_telemetry):
        monitor = DcgmMonitor(Device.create("a100"), config=quiet_telemetry)
        records = monitor.watch_run(200.0, duration_s=1.0)
        trace = DcgmMonitor.records_to_trace(records, sample_period_s=0.1)
        assert trace.num_samples == len(records)

    def test_records_to_trace_empty_rejected(self):
        with pytest.raises(TelemetryError):
            DcgmMonitor.records_to_trace([], 0.1)

    def test_unsupported_field_rejected(self):
        with pytest.raises(TelemetryError):
            DcgmMonitor(Device.create("a100"), field_ids=(999,))

    def test_missing_field_value_raises(self):
        record = DcgmRecord(timestamp_s=0.0, fields={DCGM_FI_DEV_POWER_USAGE: 100.0})
        with pytest.raises(TelemetryError):
            record.value(DCGM_FI_DEV_GPU_UTIL)

    def test_power_trace_sample_period_default_100ms(self):
        monitor = DcgmMonitor(Device.create("a100"))
        trace = monitor.power_trace(200.0, duration_s=1.0)
        assert trace.sample_period_s == pytest.approx(0.1)
