"""Unit tests for repro.patterns.sparsity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtypes import get_dtype
from repro.errors import PatternError
from repro.patterns.sparsity import (
    SparsityTransform,
    StructuredSparsityTransform,
    ZeroHighBitsTransform,
    ZeroLowBitsTransform,
)


@pytest.fixture
def matrix(rng):
    # Strictly non-zero values so sparsity is measurable.
    values = rng.normal(0, 210.0, size=(16, 16))
    values[values == 0] = 1.0
    return values


class TestSparsityTransform:
    def test_zero_sparsity_identity(self, matrix, rng):
        out = SparsityTransform(0.0).apply(matrix, get_dtype("fp32"), rng)
        np.testing.assert_array_equal(out, matrix)

    def test_full_sparsity_all_zero(self, matrix, rng):
        out = SparsityTransform(1.0).apply(matrix, get_dtype("fp32"), rng)
        assert np.all(out == 0.0)

    def test_exact_zero_count(self, matrix, rng):
        out = SparsityTransform(0.25).apply(matrix, get_dtype("fp32"), rng)
        assert int((out == 0).sum()) == int(round(0.25 * matrix.size))

    def test_nonzero_entries_unchanged(self, matrix, rng):
        out = SparsityTransform(0.5).apply(matrix, get_dtype("fp32"), rng)
        mask = out != 0
        np.testing.assert_array_equal(out[mask], matrix[mask])

    def test_input_not_mutated(self, matrix, rng):
        original = matrix.copy()
        SparsityTransform(0.5).apply(matrix, get_dtype("fp32"), rng)
        np.testing.assert_array_equal(matrix, original)

    def test_invalid_sparsity(self):
        with pytest.raises(PatternError):
            SparsityTransform(1.2)


class TestZeroBitTransforms:
    def test_zero_lsb_reduces_set_bits(self, matrix, rng):
        spec = get_dtype("fp16")
        from repro.util.bits import hamming_weight

        quantized = spec.quantize(matrix)
        out = ZeroLowBitsTransform(count=8).apply(quantized, spec, rng)
        assert hamming_weight(spec.encode(out)) < hamming_weight(spec.encode(quantized))

    def test_zero_lsb_keeps_low_bits_clear(self, matrix, rng):
        spec = get_dtype("fp16")
        out = ZeroLowBitsTransform(count=6).apply(matrix, spec, rng)
        words = spec.encode(out)
        assert int(np.bitwise_or.reduce(words.reshape(-1)) & 0x3F) == 0

    def test_zero_msb_full_width_gives_zero_matrix(self, matrix, rng):
        spec = get_dtype("fp16")
        out = ZeroHighBitsTransform(fraction=1.0).apply(matrix, spec, rng)
        assert np.all(out == 0.0)

    def test_zero_msb_shrinks_magnitudes(self, matrix, rng):
        spec = get_dtype("fp16")
        quantized = spec.quantize(matrix)
        out = ZeroHighBitsTransform(count=3).apply(quantized, spec, rng)
        assert np.abs(out).max() <= np.abs(quantized).max()

    def test_zero_count_identity(self, matrix, rng):
        spec = get_dtype("fp32")
        out = ZeroLowBitsTransform(count=0).apply(matrix, spec, rng)
        np.testing.assert_array_equal(out, matrix)

    def test_int8_zero_lsb(self, rng):
        spec = get_dtype("int8")
        values = spec.quantize(rng.normal(0, 25, size=(16, 16)))
        out = ZeroLowBitsTransform(count=2).apply(values, spec, rng)
        words = spec.encode(out)
        assert int(np.bitwise_or.reduce(words.reshape(-1)) & 0x3) == 0


class TestStructuredSparsity:
    def test_2_of_4_keeps_half(self, matrix, rng):
        out = StructuredSparsityTransform(2, 4).apply(matrix, get_dtype("fp16"), rng)
        assert (out != 0).mean() == pytest.approx(0.5)

    def test_keeps_largest_magnitudes_per_group(self, rng):
        values = np.array([[1.0, -8.0, 3.0, 0.5, 9.0, 2.0, -1.0, 4.0]])
        out = StructuredSparsityTransform(2, 4).apply(values, get_dtype("fp32"), rng)
        np.testing.assert_array_equal(out[0, :4], [0.0, -8.0, 3.0, 0.0])
        np.testing.assert_array_equal(out[0, 4:], [9.0, 0.0, 0.0, 4.0])

    def test_group_count_per_row(self, matrix, rng):
        out = StructuredSparsityTransform(1, 4).apply(matrix, get_dtype("fp32"), rng)
        nonzero_per_group = (out.reshape(16, 4, 4) != 0).sum(axis=-1)
        assert np.all(nonzero_per_group == 1)

    def test_zero_n_gives_empty_matrix(self, matrix, rng):
        out = StructuredSparsityTransform(0, 4).apply(matrix, get_dtype("fp32"), rng)
        assert np.all(out == 0)

    def test_width_not_divisible_rejected(self, rng):
        values = np.ones((2, 6))
        with pytest.raises(PatternError):
            StructuredSparsityTransform(2, 4).apply(values, get_dtype("fp32"), rng)

    def test_invalid_spec_rejected(self):
        with pytest.raises(PatternError):
            StructuredSparsityTransform(5, 4)
