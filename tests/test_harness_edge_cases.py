"""Edge-case tests of the measurement harness and the throttling path."""

from __future__ import annotations

import math


from repro.core import MIN_MEASUREMENT_DURATION_S
from repro.experiments.harness import ExperimentRunner, run_experiment
from repro.runtime.model import RuntimeModel
from repro.kernels.gemm import GemmProblem
from repro.kernels.launch import plan_launch
from repro.gpu.device import Device


class TestMeasurementWindowPadding:
    def test_short_runs_padded_to_minimum_duration(self, quiet_config):
        # 128^2 GEMM iterations are microseconds long; with the default
        # iteration count the run would be far shorter than the minimum
        # measurement window, so the harness must extend it.
        config = quiet_config(iterations=10)
        result = run_experiment(config)
        measurement = result.measurements[0]
        implied_iterations = MIN_MEASUREMENT_DURATION_S / measurement.iteration_time_s
        assert implied_iterations > 10
        # Energy is still per-iteration, so it must not blow up with padding.
        assert measurement.iteration_energy_j < 1.0

    def test_long_configs_not_padded(self, quiet_config):
        config = quiet_config(iterations=2_000_000)
        runner = ExperimentRunner(config)
        measurement = runner.run().measurements[0]
        expected_duration = 2_000_000 * measurement.iteration_time_s
        assert expected_duration >= MIN_MEASUREMENT_DURATION_S


class TestWarmupTrimming:
    def test_trimming_changes_measured_power(self, quiet_config):
        # With the warmup ramp included (no trim), the mean power must be
        # lower than with the paper's 500 ms trim applied.
        trimmed = run_experiment(quiet_config(warmup_trim_s=0.5)).mean_power_watts
        untrimmed = run_experiment(quiet_config(warmup_trim_s=0.0)).mean_power_watts
        assert untrimmed < trimmed


class TestThrottlingPath:
    def test_rtx6000_throttles_at_large_matrices(self):
        """The paper ran the RTX 6000 at 512^2 because 2048^2 throttled it.

        The model reproduces the mechanism: at full occupancy the RTX 6000's
        unconstrained power exceeds its 260 W TDP and the clock drops.
        """
        device = Device.create("rtx6000")
        problem = GemmProblem.square(2048, dtype="fp16")
        launch = plan_launch(problem, device)
        # Unconstrained dynamic power at full activity exceeds the TDP headroom.
        from repro.power.calibration import PowerCalibration

        components = PowerCalibration().components(device, "fp16")
        unconstrained = components.idle_watts + components.max_active_watts * launch.occupancy
        if unconstrained > device.tdp_watts:
            state = device.clock_model.resolve_throttle(
                components.idle_watts, components.max_active_watts * launch.occupancy
            )
            assert state.throttled
            assert state.clock_scale < 1.0

    def test_throttled_runtime_longer_than_free(self):
        device = Device.create("rtx6000")
        launch = plan_launch(GemmProblem.square(2048, dtype="fp16"), device)
        model = RuntimeModel()
        free = model.estimate(launch, clock_scale=1.0).iteration_time_s
        throttled = model.estimate(launch, clock_scale=0.7).iteration_time_s
        assert throttled > free

    def test_a100_does_not_throttle_at_paper_size(self, quiet_config):
        # The paper chose 2048 as the largest size that does not consistently
        # throttle the A100; the model agrees.
        result = run_experiment(quiet_config(matrix_size=2048, seeds=1))
        assert not result.any_throttled


class TestSeedBehaviour:
    def test_seed_measurements_vary_with_random_patterns(self, quiet_config):
        result = run_experiment(quiet_config(pattern_family="constant_random", seeds=3))
        powers = [m.power_watts for m in result.measurements]
        # Different constant values per seed -> different activity -> spread.
        assert max(powers) - min(powers) > 0.0

    def test_power_std_zero_for_single_seed(self, quiet_config):
        result = run_experiment(quiet_config(seeds=1))
        assert result.power_std_watts == 0.0

    def test_base_seed_changes_results(self, quiet_config):
        one = run_experiment(quiet_config(pattern_family="constant_random", base_seed=1))
        two = run_experiment(quiet_config(pattern_family="constant_random", base_seed=2))
        assert not math.isclose(one.mean_power_watts, two.mean_power_watts, rel_tol=1e-9)
