"""Tests for the content-addressed experiment cache (repro.cache)."""

from __future__ import annotations

import json

import pytest

from repro.cache.fingerprint import (
    canonical_json,
    code_fingerprint,
    experiment_fingerprint,
    fingerprint_payload,
)
from repro.cache.sqlite_store import DB_FILENAME, SqliteStore
from repro.cache.store import (
    DEFAULT_CACHE,
    ExperimentCache,
    get_default_cache,
    resolve_cache,
    set_default_cache,
)
from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentRunner, run_experiment
from repro.experiments.results import ExperimentResult
from repro.experiments.sweep import RunStats, run_configs, run_sweep, sweep_configs


@pytest.fixture
def isolated_default_cache():
    """Swap in a fresh default cache and restore the old one afterwards."""
    previous = get_default_cache()
    fresh = ExperimentCache()
    set_default_cache(fresh)
    yield fresh
    set_default_cache(previous)


@pytest.fixture
def count_runs(monkeypatch):
    """Count how many times the measurement harness actually executes."""
    calls = {"count": 0}
    original = ExperimentRunner.run

    def counting(self):
        calls["count"] += 1
        return original(self)

    monkeypatch.setattr(ExperimentRunner, "run", counting)
    return calls


class TestFingerprint:
    def test_stable_and_label_invariant(self, quiet_config):
        config = quiet_config()
        assert experiment_fingerprint(config) == experiment_fingerprint(config)
        relabelled = config.with_overrides(label="something else")
        assert experiment_fingerprint(config) == experiment_fingerprint(relabelled)

    def test_sensitive_to_config_changes(self, quiet_config):
        base = experiment_fingerprint(quiet_config())
        assert experiment_fingerprint(quiet_config(matrix_size=256)) != base
        assert experiment_fingerprint(quiet_config(base_seed=7)) != base
        assert experiment_fingerprint(quiet_config(seeds=2)) != base
        assert (
            experiment_fingerprint(quiet_config(pattern_family="sparsity"))
            != base
        )

    def test_sensitive_to_estimator_and_telemetry_knobs(self, quiet_config):
        from repro.activity.sampler import SamplingConfig
        from repro.telemetry.sampler import TelemetryConfig

        base = experiment_fingerprint(quiet_config())
        assert (
            experiment_fingerprint(
                quiet_config(sampling=SamplingConfig(output_samples=32))
            )
            != base
        )
        assert (
            experiment_fingerprint(
                quiet_config(telemetry=TelemetryConfig(noise_std_watts=2.0))
            )
            != base
        )

    def test_seed_granularity(self, quiet_config):
        config = quiet_config()
        whole = experiment_fingerprint(config)
        per_seed = experiment_fingerprint(config, seed=0)
        assert whole != per_seed
        assert per_seed != experiment_fingerprint(config, seed=1)

    def test_code_version_invalidates(self, quiet_config):
        config = quiet_config()
        assert experiment_fingerprint(config) == experiment_fingerprint(
            config, code_version=code_fingerprint()
        )
        assert experiment_fingerprint(config) != experiment_fingerprint(
            config, code_version="other-version"
        )

    def test_sensitive_to_registry_respecification(self, quiet_config, monkeypatch):
        """Re-registering a dtype/GPU name must not serve stale cached results."""
        import dataclasses

        from repro.gpu import specs as gpu_specs

        config = quiet_config()
        before = experiment_fingerprint(config)
        modified = dataclasses.replace(
            gpu_specs.get_gpu_spec("a100"),
            tdp_watts=gpu_specs.get_gpu_spec("a100").tdp_watts + 25.0,
        )
        monkeypatch.setitem(gpu_specs.GPU_SPECS, "a100", modified)
        assert experiment_fingerprint(config) != before

    def test_canonical_json_is_order_insensitive(self):
        a = fingerprint_payload({"x": 1, "y": [1, 2]})
        b = fingerprint_payload({"y": [1, 2], "x": 1})
        assert a == b
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestExperimentCache:
    def test_hit_miss_and_stats(self, quiet_config):
        cache = ExperimentCache()
        config = quiet_config()
        key = experiment_fingerprint(config)
        assert cache.get(key) is None
        result = run_experiment(config, cache=None)
        cache.put(key, result)
        hit = cache.get(key)
        assert hit is not None
        assert hit.as_dict() == result.as_dict()
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_copies_are_defensive(self, quiet_config):
        cache = ExperimentCache()
        config = quiet_config()
        result = run_experiment(config, cache=None)
        key = experiment_fingerprint(config)
        cache.put(key, result)
        result.config["label"] = "mutated after put"
        first = cache.get(key)
        first.config["label"] = "mutated after get"
        second = cache.get(key)
        assert second.config["label"] not in ("mutated after put", "mutated after get")

    def test_lru_eviction(self, quiet_config):
        cache = ExperimentCache(max_entries=2)
        result = run_experiment(quiet_config(), cache=None)
        cache.put("a", result)
        cache.put("b", result)
        assert cache.get("a") is not None  # refresh "a"; "b" is now oldest
        cache.put("c", result)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_rejects_bad_values(self):
        cache = ExperimentCache()
        with pytest.raises(ExperimentError):
            cache.put("key", {"not": "a result"})
        with pytest.raises(ExperimentError):
            ExperimentCache(max_entries=0)
        with pytest.raises(ExperimentError):
            resolve_cache("bogus")

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_disk_round_trip(self, quiet_config, tmp_path, backend):
        config = quiet_config()
        key = experiment_fingerprint(config)
        result = run_experiment(config, cache=None)

        writer = ExperimentCache(disk_dir=tmp_path, disk_backend=backend)
        writer.put(key, result)
        if backend == "json":
            assert (tmp_path / f"{key}.json").exists()
        else:
            assert (tmp_path / DB_FILENAME).exists()
            assert not (tmp_path / f"{key}.json").exists()

        # A fresh instance (fresh process, conceptually) reads it back.
        reader = ExperimentCache(disk_dir=tmp_path, disk_backend=backend)
        loaded = reader.get(key)
        assert loaded is not None
        assert reader.stats.disk_hits == 1
        assert loaded.as_dict() == result.as_dict()

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_corrupt_disk_entry_is_a_miss(self, quiet_config, tmp_path, backend):
        config = quiet_config()
        key = experiment_fingerprint(config)
        if backend == "json":
            (tmp_path / f"{key}.json").write_text("{not json")
        else:
            with SqliteStore(tmp_path) as store:
                store.put(key, "{not json")
        cache = ExperimentCache(disk_dir=tmp_path, disk_backend=backend)
        assert cache.get(key) is None
        assert cache.stats.disk_errors == 1
        assert cache.stats.misses == 1
        # The unreadable entry is deleted, not left to trip every lookup.
        if backend == "json":
            assert not (tmp_path / f"{key}.json").exists()
        else:
            with SqliteStore(tmp_path) as store:
                assert not store.contains(key)

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_clear(self, quiet_config, tmp_path, backend):
        config = quiet_config()
        key = experiment_fingerprint(config)
        cache = ExperimentCache(disk_dir=tmp_path, disk_backend=backend)
        cache.put(key, run_experiment(config, cache=None))
        cache.clear()
        assert len(cache) == 0
        assert key in cache  # still on disk
        cache.clear(disk=True)
        assert key not in cache


class TestResultRoundTrip:
    def test_from_dict_equals_original(self, quiet_config):
        result = run_experiment(quiet_config(seeds=2), cache=None)
        round_tripped = ExperimentResult.from_dict(
            json.loads(json.dumps(result.as_dict()))
        )
        assert round_tripped.as_dict() == result.as_dict()
        assert round_tripped.mean_power_watts == result.mean_power_watts
        assert (
            round_tripped.measurements[0].activity.shape
            == result.measurements[0].activity.shape
        )


class TestCacheWiring:
    def test_run_experiment_uses_explicit_cache(self, quiet_config, count_runs):
        cache = ExperimentCache()
        config = quiet_config()
        first = run_experiment(config, cache=cache)
        second = run_experiment(config, cache=cache)
        assert count_runs["count"] == 1
        assert first.as_dict() == second.as_dict()

    def test_run_experiment_cache_none_recomputes(self, quiet_config, count_runs):
        config = quiet_config()
        run_experiment(config, cache=None)
        run_experiment(config, cache=None)
        assert count_runs["count"] == 2

    def test_cached_result_restamps_label(self, quiet_config):
        cache = ExperimentCache()
        config = quiet_config(label="first label")
        run_experiment(config, cache=cache)
        hit = run_experiment(config.with_overrides(label="second label"), cache=cache)
        assert hit.config["label"] == "second label"

    def test_default_cache_sentinel(self, quiet_config, isolated_default_cache, count_runs):
        config = quiet_config()
        run_experiment(config)
        run_experiment(config, cache=DEFAULT_CACHE)
        assert count_runs["count"] == 1
        assert isolated_default_cache.stats.hits == 1

    def test_cached_equals_fresh(self, quiet_config):
        cache = ExperimentCache()
        config = quiet_config(seeds=2)
        cached_source = run_experiment(config, cache=cache)
        hit = run_experiment(config, cache=cache)
        fresh = run_experiment(config, cache=None)
        assert hit.as_dict() == fresh.as_dict() == cached_source.as_dict()


class TestSweepOrchestration:
    def test_repeated_sweep_hits_cache(self, quiet_config, count_runs):
        cache = ExperimentCache()
        base = quiet_config(pattern_family="sparsity")
        first = run_sweep(base, "sparsity", [0.0, 0.5, 1.0], cache=cache)
        assert count_runs["count"] == 3
        stats = RunStats()
        second = run_sweep(base, "sparsity", [0.0, 0.5, 1.0], cache=cache, stats=stats)
        assert count_runs["count"] == 3  # no further harness invocations
        assert stats.cache_hits == 3 and stats.executed == 0
        assert [r.as_dict() for r in second.results] == [
            r.as_dict() for r in first.results
        ]

    def test_duplicate_configs_computed_once(self, quiet_config, count_runs):
        base = quiet_config(pattern_family="sparsity")
        configs = sweep_configs(base, "sparsity", [0.0, 1.0, 0.0, 1.0])
        stats = RunStats()
        results = run_configs(configs, cache=None, stats=stats)
        assert count_runs["count"] == 2
        assert stats.total == 4 and stats.unique == 2 and stats.executed == 2
        assert len(results) == 4
        assert results[0].as_dict()["measurements"] == results[2].as_dict()["measurements"]
        # Labels still reflect each requested point.
        assert [r.config["label"] for r in results] == [
            c.describe()["label"] for c in configs
        ]

    def test_dedupe_can_be_disabled(self, quiet_config, count_runs):
        base = quiet_config(pattern_family="sparsity")
        configs = sweep_configs(base, "sparsity", [0.0, 0.0])
        run_configs(configs, cache=None, dedupe=False)
        assert count_runs["count"] == 2

    def test_progress_hook(self, quiet_config):
        base = quiet_config(pattern_family="sparsity")
        events = []
        run_sweep(
            base,
            "sparsity",
            [0.0, 0.5],
            cache=None,
            progress=lambda done, total, label: events.append((done, total, label)),
        )
        assert [(done, total) for done, total, _ in events] == [(1, 2), (2, 2)]
        assert all("sparsity" in label for _, _, label in events)

    def test_reused_stats_reset_between_calls(self, quiet_config):
        cache = ExperimentCache()
        base = quiet_config(pattern_family="sparsity")
        configs = sweep_configs(base, "sparsity", [0.0, 0.5])
        stats = RunStats()
        run_configs(configs, cache=cache, stats=stats)
        assert (stats.executed, stats.cache_hits) == (2, 0)
        run_configs(configs, cache=cache, stats=stats)
        assert (stats.executed, stats.cache_hits) == (0, 2)
        assert stats.executed + stats.cache_hits == stats.unique == 2

    def test_invalid_chunksize(self, quiet_config):
        with pytest.raises(ExperimentError):
            run_configs([quiet_config()], chunksize=0)

    def test_pool_matches_serial_with_cache(self, quiet_config):
        base = quiet_config(pattern_family="sparsity")
        configs = sweep_configs(base, "sparsity", [0.0, 0.5, 1.0])
        parallel = run_configs(configs, workers=2, cache=ExperimentCache())
        serial = run_configs(configs, cache=None)
        assert [r.as_dict() for r in parallel] == [r.as_dict() for r in serial]
