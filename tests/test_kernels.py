"""Unit tests for the repro.kernels package."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelError
from repro.gpu.device import Device
from repro.gpu.specs import get_gpu_spec
from repro.kernels.gemm import GemmOperands, GemmProblem, reference_gemm
from repro.kernels.launch import plan_launch
from repro.kernels.schedule import build_streams
from repro.kernels.tiling import TileConfig, default_tile_config


class TestGemmProblem:
    def test_square_constructor(self):
        problem = GemmProblem.square(2048, dtype="fp16_t")
        assert (problem.n, problem.m, problem.k) == (2048, 2048, 2048)
        assert problem.flops == pytest.approx(2 * 2048**3)

    def test_dtype_normalized(self):
        assert GemmProblem.square(64, dtype="FP16-T").dtype == "fp16_t"

    def test_invalid_dims(self):
        with pytest.raises(KernelError):
            GemmProblem(n=0, m=4, k=4)

    def test_b_storage_shape_transposed(self):
        problem = GemmProblem(n=8, m=16, k=32, transpose_b=True)
        assert problem.a_shape == (8, 32)
        assert problem.b_storage_shape == (16, 32)

    def test_b_storage_shape_not_transposed(self):
        problem = GemmProblem(n=8, m=16, k=32, transpose_b=False)
        assert problem.b_storage_shape == (32, 16)

    def test_operand_bytes(self):
        problem = GemmProblem.square(64, dtype="fp16")
        assert problem.operand_bytes() == pytest.approx(2 * (3 * 64 * 64 + 64 * 64))

    def test_describe_round_trip(self):
        problem = GemmProblem.square(64, dtype="int8", alpha=2.0)
        desc = problem.describe()
        assert desc["dtype"] == "int8" and desc["alpha"] == 2.0


class TestGemmOperands:
    def test_shape_validation(self, rng):
        problem = GemmProblem(n=8, m=16, k=32, transpose_b=True)
        a = rng.normal(size=(8, 32))
        b = rng.normal(size=(16, 32))
        operands = GemmOperands(problem=problem, a=a, b_stored=b)
        assert operands.b_used.shape == (32, 16)

    def test_wrong_a_shape_rejected(self, rng):
        problem = GemmProblem(n=8, m=16, k=32)
        with pytest.raises(KernelError):
            GemmOperands(problem=problem, a=rng.normal(size=(8, 16)), b_stored=rng.normal(size=(16, 32)))

    def test_wrong_c_shape_rejected(self, rng):
        problem = GemmProblem(n=8, m=8, k=8)
        with pytest.raises(KernelError):
            GemmOperands(
                problem=problem,
                a=rng.normal(size=(8, 8)),
                b_stored=rng.normal(size=(8, 8)),
                c=rng.normal(size=(4, 4)),
            )

    def test_effective_c_defaults_to_zero(self, rng):
        problem = GemmProblem(n=4, m=4, k=4)
        operands = GemmOperands(problem=problem, a=rng.normal(size=(4, 4)), b_stored=rng.normal(size=(4, 4)))
        assert np.all(operands.effective_c() == 0.0)


class TestReferenceGemm:
    def test_matches_numpy_fp32(self, rng):
        problem = GemmProblem(n=16, m=12, k=20, dtype="fp32", transpose_b=True)
        a = rng.normal(size=(16, 20))
        b = rng.normal(size=(12, 20))
        result = reference_gemm(GemmOperands(problem=problem, a=a, b_stored=b))
        expected = a.astype(np.float32).astype(np.float64) @ b.T.astype(np.float32).astype(np.float64)
        np.testing.assert_allclose(result, expected, rtol=1e-6)

    def test_alpha_beta(self, rng):
        problem = GemmProblem(n=4, m=4, k=4, dtype="fp32", alpha=2.0, beta=1.0, transpose_b=False)
        a = rng.normal(size=(4, 4))
        b = rng.normal(size=(4, 4))
        c = rng.normal(size=(4, 4))
        result = reference_gemm(GemmOperands(problem=problem, a=a, b_stored=b, c=c))
        expected = 2.0 * (
            a.astype(np.float32).astype(np.float64) @ b.astype(np.float32).astype(np.float64)
        ) + c
        np.testing.assert_allclose(result, expected, rtol=1e-6)

    def test_int8_quantizes_before_multiplying(self):
        problem = GemmProblem(n=1, m=1, k=2, dtype="int8", transpose_b=False)
        a = np.array([[1.4, 2.6]])
        b = np.array([[2.0], [3.0]])
        result = reference_gemm(GemmOperands(problem=problem, a=a, b_stored=b))
        # 1.4 -> 1, 2.6 -> 3, so the result is 1*2 + 3*3 = 11.
        assert result[0, 0] == pytest.approx(11.0)


class TestTiling:
    def test_default_tiles_per_dtype(self):
        assert default_tile_config("fp16_t").block_k == 32
        assert default_tile_config("int8").block_k == 64
        assert default_tile_config("fp32").block_k == 8

    def test_grid_and_k_iterations(self):
        config = default_tile_config("fp16_t")
        problem = GemmProblem.square(2048, dtype="fp16_t")
        assert config.grid_shape(problem) == (16, 16)
        assert config.num_threadblocks(problem) == 256
        assert config.k_iterations(problem) == 64

    def test_ceiling_division_for_non_multiples(self):
        config = TileConfig(block_m=128, block_n=128, block_k=32)
        problem = GemmProblem(n=130, m=100, k=40, dtype="fp16_t")
        assert config.grid_shape(problem) == (2, 1)
        assert config.k_iterations(problem) == 2

    def test_invalid_tiles(self):
        with pytest.raises(KernelError):
            TileConfig(block_m=0, block_n=128, block_k=32)
        with pytest.raises(KernelError):
            TileConfig(block_m=64, block_n=64, block_k=32, warp_m=128, warp_n=64)
        with pytest.raises(KernelError):
            TileConfig(block_m=96, block_n=96, block_k=32, warp_m=64, warp_n=64)

    def test_shared_memory_shrink_for_small_sm(self):
        spec = get_gpu_spec("rtx6000")
        config = default_tile_config("fp32", spec)
        element_bytes = 4
        assert config.shared_memory_bytes(element_bytes) <= spec.shared_mem_per_sm_kb * 1024

    def test_warps_per_block(self):
        config = TileConfig(block_m=128, block_n=128, block_k=32, warp_m=64, warp_n=64)
        assert config.warps_per_block == 4


class TestSchedule:
    def test_streams_shapes(self, rng):
        problem = GemmProblem(n=8, m=16, k=32, dtype="fp16", transpose_b=True)
        operands = GemmOperands(
            problem=problem, a=rng.normal(size=(8, 32)), b_stored=rng.normal(size=(16, 32))
        )
        streams = build_streams(operands)
        assert streams.a_words.shape == (8, 32)
        assert streams.b_words.shape == (32, 16)
        assert streams.b_stored_words.shape == (16, 32)
        assert (streams.n, streams.m, streams.k) == (8, 16, 32)

    def test_streams_quantized(self, rng):
        problem = GemmProblem(n=8, m=8, k=8, dtype="int8", transpose_b=False)
        operands = GemmOperands(
            problem=problem, a=rng.normal(0, 300, size=(8, 8)), b_stored=rng.normal(size=(8, 8))
        )
        streams = build_streams(operands)
        assert streams.a_used.max() <= 127 and streams.a_used.min() >= -128

    def test_sample_output_positions(self, rng):
        problem = GemmProblem(n=10, m=12, k=8, dtype="fp16")
        operands = GemmOperands(
            problem=problem, a=rng.normal(size=(10, 8)), b_stored=rng.normal(size=(12, 8))
        )
        streams = build_streams(operands)
        rows, cols = streams.sample_output_positions(np.random.default_rng(0), 50)
        assert rows.max() < 10 and cols.max() < 12
        assert rows.size == 50

    def test_sample_more_than_space_returns_all(self, rng):
        problem = GemmProblem(n=4, m=4, k=4, dtype="fp16")
        operands = GemmOperands(
            problem=problem, a=rng.normal(size=(4, 4)), b_stored=rng.normal(size=(4, 4))
        )
        streams = build_streams(operands)
        rows, _ = streams.sample_output_positions(np.random.default_rng(0), 1000)
        assert rows.size == 16

    def test_sample_invalid_count(self, rng):
        problem = GemmProblem(n=4, m=4, k=4, dtype="fp16")
        operands = GemmOperands(
            problem=problem, a=rng.normal(size=(4, 4)), b_stored=rng.normal(size=(4, 4))
        )
        with pytest.raises(KernelError):
            build_streams(operands).sample_output_positions(np.random.default_rng(0), 0)


class TestLaunch:
    def test_plan_basic(self):
        device = Device.create("a100")
        problem = GemmProblem.square(2048, dtype="fp16_t")
        launch = plan_launch(problem, device)
        assert launch.threadblocks == 256
        assert launch.waves == pytest.approx(256 / 108)
        assert 0.0 < launch.occupancy <= 1.0
        assert launch.flops == problem.flops
        assert launch.dram_traffic_bytes > 0

    def test_small_problem_low_occupancy(self):
        device = Device.create("a100")
        launch = plan_launch(GemmProblem.square(128, dtype="fp16_t"), device)
        assert launch.occupancy < 0.05

    def test_unknown_dtype_rejected_by_device(self):
        device = Device.create("a100")
        problem = GemmProblem.square(128, dtype="bf16")
        # bf16 is registered on the A100, so this should work...
        plan_launch(problem, device)

    def test_invalid_blocks_per_sm(self):
        device = Device.create("a100")
        with pytest.raises(KernelError):
            plan_launch(GemmProblem.square(128), device, blocks_per_sm=0)

    def test_describe(self):
        device = Device.create("a100")
        desc = plan_launch(GemmProblem.square(256), device).describe()
        assert desc["device"] == "a100"
        assert desc["threadblocks"] == 4
